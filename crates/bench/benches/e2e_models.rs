//! Criterion benches: real end-to-end interpreter execution of the tiny
//! model presets (one per task domain) plus the analytic profiling path at
//! full scale — the two backends of the end-to-end flow.

use criterion::{criterion_group, criterion_main, Criterion};
use nongemm::exec::Interpreter;
use nongemm::{Flow, ModelId, Platform, Scale};

fn bench_tiny_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_tiny_execute");
    g.sample_size(10);
    for model in [
        ModelId::ResNet50,
        ModelId::VitBase16,
        ModelId::FasterRcnn,
        ModelId::Segformer,
        ModelId::Gpt2,
        ModelId::Llama2_7b,
    ] {
        let graph = model.build(1, Scale::Tiny).expect("suite models build");
        let interp = Interpreter::default();
        g.bench_function(model.spec().alias, |b| {
            b.iter(|| interp.run(&graph).expect("tiny models execute"))
        });
    }
    g.finish();
}

fn bench_analytic_profiling(c: &mut Criterion) {
    // how fast the harness itself is: trace -> plan -> cost -> breakdown
    let mut g = c.benchmark_group("analytic_profile_full_scale");
    g.sample_size(10);
    for model in [ModelId::Gpt2Xl, ModelId::MaskRcnn] {
        let graph = model.build(1, Scale::Full).expect("suite models build");
        let platform = Platform::data_center();
        g.bench_function(model.spec().alias, |b| {
            b.iter(|| {
                let p =
                    nongemm::profiler::profile_analytic(&graph, &platform, Flow::Eager, true, 1);
                p.breakdown()
            })
        });
    }
    g.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_build_full_scale");
    g.sample_size(10);
    for model in [ModelId::Gpt2Xl, ModelId::SwinBase, ModelId::FasterRcnn] {
        g.bench_function(model.spec().alias, |b| {
            b.iter(|| model.build(1, Scale::Full).expect("suite models build"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tiny_execution,
    bench_analytic_profiling,
    bench_graph_construction
);
criterion_main!(benches);
