//! Criterion benches for the GEMM-operator kernels: matmul scaling,
//! convolution lowering, batched matmul, and linear layers at
//! transformer-realistic shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nongemm::ops::gemm;
use nongemm::tensor::random::TensorRng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut rng = TensorRng::seed(1);
        let a = rng.normal(&[n, n]);
        let b = rng.normal(&[n, n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| gemm::matmul(&a, &b).expect("valid shapes"))
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = TensorRng::seed(2);
    // (label, x, w, stride, padding, groups)
    let x1 = rng.normal(&[1, 8, 32, 32]);
    let w1 = rng.normal(&[16, 8, 3, 3]);
    group.bench_function("3x3_s1", |b| {
        b.iter(|| gemm::conv2d(&x1, &w1, None, 1, 1, 1).expect("valid shapes"))
    });
    let w2 = rng.normal(&[8, 1, 3, 3]);
    group.bench_function("depthwise", |b| {
        b.iter(|| gemm::conv2d(&x1, &w2, None, 1, 1, 8).expect("valid shapes"))
    });
    let w3 = rng.normal(&[16, 8, 1, 1]);
    group.bench_function("1x1", |b| {
        b.iter(|| gemm::conv2d(&x1, &w3, None, 1, 0, 1).expect("valid shapes"))
    });
    group.finish();
}

fn bench_bmm_and_linear(c: &mut Criterion) {
    let mut rng = TensorRng::seed(3);
    // attention-shaped bmm: [heads, T, hd] @ [heads, hd, T]
    let q = rng.normal(&[12, 64, 32]);
    let k = rng.normal(&[12, 32, 64]);
    c.bench_function("bmm_attention_shape", |b| {
        b.iter(|| gemm::bmm(&q, &k).expect("valid shapes"))
    });
    let x = rng.normal(&[1, 64, 256]);
    let w = rng.normal(&[512, 256]);
    let bias = rng.normal(&[512]);
    c.bench_function("linear_mlp_up", |b| {
        b.iter(|| gemm::linear(&x, &w, Some(&bias)).expect("valid shapes"))
    });
    let wc = rng.normal(&[256, 512]);
    c.bench_function("conv1d_gpt2", |b| {
        b.iter(|| gemm::conv1d_gpt2(&x, &wc, Some(&bias)).expect("valid shapes"))
    });
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_bmm_and_linear);
criterion_main!(benches);
