//! Criterion benches: the same graph executed unoptimized and through the
//! `ngb-opt` rewriter. Models are chosen to exercise each rewrite family —
//! conv+bn folding (ResNet), GEMM epilogues (ViT/GPT-2), and attention
//! prologues (GPT-2/BERT).

use criterion::{criterion_group, criterion_main, Criterion};
use nongemm::exec::Interpreter;
use nongemm::opt::{optimize, OptLevel};
use nongemm::{ModelId, Scale};

fn bench_fused_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_fused_execute");
    g.sample_size(10);
    for model in [
        ModelId::ResNet50,
        ModelId::VitBase16,
        ModelId::Gpt2,
        ModelId::Bert,
    ] {
        let graph = model.build(4, Scale::Tiny).expect("suite models build");
        let alias = model.spec().alias;
        let interp = Interpreter::default();
        for (label, level) in [
            ("o0", OptLevel::O0),
            ("o1", OptLevel::O1),
            ("o2", OptLevel::O2),
        ] {
            let (opt_graph, _) = optimize(&graph, level);
            g.bench_function(format!("{alias}/{label}"), |b| {
                b.iter(|| interp.run(&opt_graph).expect("tiny models execute"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fused_execution);
criterion_main!(benches);
