//! Criterion benches: sequential vs parallel end-to-end execution of the
//! branchier tiny presets. The interesting comparison is the same graph on
//! `Engine::Sequential` and `Engine::Parallel(n)` — wavefront width, not
//! node count, decides how much the thread pool can help.

use criterion::{criterion_group, criterion_main, Criterion};
use nongemm::exec::{Engine, Interpreter};
use nongemm::{ModelId, Scale};

fn bench_parallel_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_parallel_execute");
    g.sample_size(10);
    for model in [
        ModelId::FasterRcnn,
        ModelId::SwinBase,
        ModelId::VitBase16,
        ModelId::Gpt2,
    ] {
        let graph = model.build(4, Scale::Tiny).expect("suite models build");
        let alias = model.spec().alias;
        for (label, engine) in [
            ("seq", Engine::Sequential),
            ("par2", Engine::Parallel(2)),
            ("par4", Engine::Parallel(4)),
        ] {
            let interp = Interpreter::default().engine(engine);
            g.bench_function(format!("{alias}/{label}"), |b| {
                b.iter(|| interp.run(&graph).expect("tiny models execute"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_execution);
criterion_main!(benches);
