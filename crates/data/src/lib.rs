//! # ngb-data
//!
//! Synthetic stand-ins for the paper's datasets (Table 1): ImageNet-2012,
//! MS-COCO, and wikitext. The environment has none of the real corpora, so
//! each generator produces deterministic samples with the *properties the
//! study depends on* — input resolutions, box counts, and token-sequence
//! lengths — plus the preprocessing steps the paper's harness applies
//! (rescale to model resolution, tokenize, batch) so the data-preprocessing
//! code path is exercised end to end. See DESIGN.md §2 for the
//! substitution rationale.

#![forbid(unsafe_code)]

mod image;
mod text;

pub use image::{CocoSample, CocoSynthetic, ImageNetSynthetic, Preprocessor};
pub use text::{Tokenizer, WikitextSynthetic};

/// Result alias shared by the dataset generators.
pub type Result<T> = std::result::Result<T, ngb_tensor::TensorError>;
