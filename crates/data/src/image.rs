//! Synthetic image datasets and the image-preprocessing pipeline.

use ngb_tensor::random::TensorRng;
use ngb_tensor::Tensor;

use crate::Result;

/// A deterministic ImageNet-like source: every sample is a smooth random
/// field at a raw resolution that the [`Preprocessor`] then rescales, so
/// profiling runs include the same preprocessing work as the paper's.
#[derive(Debug, Clone)]
pub struct ImageNetSynthetic {
    /// Raw capture resolution before preprocessing (ImageNet JPEGs average
    /// ~400 px on the short side).
    pub raw_resolution: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for ImageNetSynthetic {
    fn default() -> Self {
        ImageNetSynthetic {
            raw_resolution: 256,
            seed: 0xda7a,
        }
    }
}

impl ImageNetSynthetic {
    /// Creates a source producing `raw_resolution²` RGB images.
    pub fn new(raw_resolution: usize, seed: u64) -> Self {
        ImageNetSynthetic {
            raw_resolution,
            seed,
        }
    }

    /// The `index`-th raw image, `[3, R, R]` with values in `[0, 1)`.
    pub fn sample(&self, index: usize) -> Tensor {
        let mut rng = TensorRng::seed(self.seed.wrapping_add(index as u64));
        // low-frequency base + pixel noise gives natural-image-like stats
        let base = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let noise = rng.uniform(&[3, self.raw_resolution, self.raw_resolution], 0.0, 0.15);
        let up = ngb_ops::interpolate::interpolate_bilinear(
            &base.unsqueeze(0).expect("rank ok"),
            self.raw_resolution,
            self.raw_resolution,
        )
        .expect("valid resize")
        .squeeze(0)
        .expect("batch dim");
        up.zip_map(&noise, |a, b| (a + b).clamp(0.0, 1.0))
            .expect("same shape")
    }
}

/// A COCO-like detection sample: an image plus ground-truth boxes.
#[derive(Debug, Clone)]
pub struct CocoSample {
    /// RGB image `[3, R, R]`.
    pub image: Tensor,
    /// Boxes `[N, 4]` in corner format within the image bounds.
    pub boxes: Tensor,
}

/// A deterministic COCO-like source (images + object boxes); detection
/// scenes average ~7 objects, which drives the NMS workload size.
#[derive(Debug, Clone)]
pub struct CocoSynthetic {
    /// Raw resolution.
    pub raw_resolution: usize,
    /// Mean objects per image.
    pub objects: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for CocoSynthetic {
    fn default() -> Self {
        CocoSynthetic {
            raw_resolution: 320,
            objects: 7,
            seed: 0xc0c0,
        }
    }
}

impl CocoSynthetic {
    /// The `index`-th sample.
    pub fn sample(&self, index: usize) -> CocoSample {
        let image = ImageNetSynthetic::new(self.raw_resolution, self.seed ^ 0x1111).sample(index);
        let mut rng = TensorRng::seed(self.seed.wrapping_add(index as u64) ^ 0xb0b0);
        let n = 1 + (index + self.objects) % (2 * self.objects);
        let r = self.raw_resolution as f32;
        let xy = rng.uniform(&[n, 2], 0.0, r * 0.7);
        let wh = rng.uniform(&[n, 2], r * 0.05, r * 0.3);
        let mut v = Vec::with_capacity(n * 4);
        for i in 0..n {
            let (x, y) = (
                xy.at(&[i, 0]).expect("in range"),
                xy.at(&[i, 1]).expect("in range"),
            );
            let (w, h) = (
                wh.at(&[i, 0]).expect("in range"),
                wh.at(&[i, 1]).expect("in range"),
            );
            v.extend_from_slice(&[x, y, (x + w).min(r), (y + h).min(r)]);
        }
        let boxes = Tensor::from_vec(v, &[n, 4]).expect("length matches");
        CocoSample { image, boxes }
    }
}

/// The model-side image preprocessing the paper's harness performs:
/// bilinear rescale to the model resolution, then per-channel
/// normalization with ImageNet statistics.
#[derive(Debug, Clone)]
pub struct Preprocessor {
    /// Target (square) model resolution.
    pub resolution: usize,
}

impl Preprocessor {
    /// Creates a preprocessor targeting `resolution²`.
    pub fn new(resolution: usize) -> Self {
        Preprocessor { resolution }
    }

    /// Rescales and normalizes one raw image `[3, R, R]` → `[3, res, res]`.
    ///
    /// # Errors
    ///
    /// Fails when the input is not a `[3, H, W]` f32 tensor.
    pub fn process(&self, raw: &Tensor) -> Result<Tensor> {
        const MEAN: [f32; 3] = [0.485, 0.456, 0.406];
        const STD: [f32; 3] = [0.229, 0.224, 0.225];
        let resized = ngb_ops::interpolate::interpolate_bilinear(
            &raw.unsqueeze(0)?,
            self.resolution,
            self.resolution,
        )?
        .squeeze(0)?;
        let mean = Tensor::from_vec(MEAN.to_vec(), &[3])?.reshape(&[3, 1, 1])?;
        let std = Tensor::from_vec(STD.to_vec(), &[3])?.reshape(&[3, 1, 1])?;
        let centered = resized.zip_map(&mean, |a, m| a - m)?;
        centered.zip_map(&std, |a, s| a / s)
    }

    /// Processes and stacks `count` samples into a batch `[count, 3, r, r]`.
    ///
    /// # Errors
    ///
    /// Propagates per-sample preprocessing errors.
    pub fn batch(&self, source: &ImageNetSynthetic, count: usize) -> Result<Tensor> {
        let processed: Result<Vec<Tensor>> = (0..count)
            .map(|i| self.process(&source.sample(i)))
            .collect();
        Tensor::stack(&processed?, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let ds = ImageNetSynthetic::default();
        let a = ds.sample(0);
        let b = ds.sample(0);
        let c = ds.sample(1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.shape(), &[3, 256, 256]);
        assert!(a
            .to_vec_f32()
            .unwrap()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn preprocess_resizes_and_normalizes() {
        let ds = ImageNetSynthetic::new(64, 1);
        let p = Preprocessor::new(32);
        let out = p.process(&ds.sample(3)).unwrap();
        assert_eq!(out.shape(), &[3, 32, 32]);
        // normalized values leave [0, 1]
        let v = out.to_vec_f32().unwrap();
        assert!(v.iter().any(|&x| x < 0.0) || v.iter().any(|&x| x > 1.0));
    }

    #[test]
    fn batch_stacks() {
        let ds = ImageNetSynthetic::new(48, 2);
        let b = Preprocessor::new(24).batch(&ds, 4).unwrap();
        assert_eq!(b.shape(), &[4, 3, 24, 24]);
    }

    #[test]
    fn coco_boxes_in_bounds() {
        let ds = CocoSynthetic::default();
        for i in 0..5 {
            let s = ds.sample(i);
            assert_eq!(s.image.shape(), &[3, 320, 320]);
            let b = s.boxes.to_vec_f32().unwrap();
            assert!(s.boxes.shape()[0] >= 1);
            for bx in b.chunks(4) {
                assert!(bx[0] <= bx[2] && bx[1] <= bx[3]);
                assert!(bx[2] <= 320.0 && bx[3] <= 320.0);
            }
        }
    }

    #[test]
    fn coco_object_count_varies() {
        let ds = CocoSynthetic::default();
        let counts: std::collections::BTreeSet<usize> =
            (0..8).map(|i| ds.sample(i).boxes.shape()[0]).collect();
        assert!(counts.len() > 2);
    }
}
