//! Synthetic wikitext-like corpus and a deterministic tokenizer.

use ngb_tensor::Tensor;

use crate::Result;

/// A deterministic wikitext-like corpus: sentences assembled from a fixed
/// function-word skeleton plus content words drawn from a Zipf-ish
/// distribution, mirroring the length statistics language-model profiling
/// depends on. Empty lines occur (as in real wikitext) so the paper's
/// "remove empty sequences" cleaning step has work to do.
#[derive(Debug, Clone)]
pub struct WikitextSynthetic {
    /// Corpus seed.
    pub seed: u64,
}

impl Default for WikitextSynthetic {
    fn default() -> Self {
        WikitextSynthetic { seed: 0x7e97 }
    }
}

const FUNCTION_WORDS: [&str; 12] = [
    "the", "of", "and", "in", "to", "a", "was", "is", "for", "on", "as", "with",
];
const CONTENT_WORDS: [&str; 24] = [
    "system",
    "network",
    "model",
    "history",
    "village",
    "energy",
    "river",
    "music",
    "species",
    "game",
    "century",
    "battle",
    "engine",
    "album",
    "language",
    "station",
    "theory",
    "region",
    "processor",
    "matrix",
    "kernel",
    "memory",
    "tensor",
    "operator",
];

impl WikitextSynthetic {
    /// Creates a corpus from `seed`.
    pub fn new(seed: u64) -> Self {
        WikitextSynthetic { seed }
    }

    /// The `index`-th line; roughly one in eight lines is empty.
    pub fn line(&self, index: usize) -> String {
        let mut state = self
            .seed
            .wrapping_add(index as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        if next() % 8 == 0 {
            return String::new();
        }
        let len = 6 + (next() % 18) as usize;
        let mut words = Vec::with_capacity(len);
        for w in 0..len {
            if w % 2 == 0 {
                words.push(FUNCTION_WORDS[(next() % FUNCTION_WORDS.len() as u64) as usize]);
            } else {
                // square a uniform draw for a head-heavy (Zipf-ish) pick
                let u = (next() % 1000) as f64 / 1000.0;
                let idx = ((u * u) * CONTENT_WORDS.len() as f64) as usize;
                words.push(CONTENT_WORDS[idx.min(CONTENT_WORDS.len() - 1)]);
            }
        }
        words.join(" ")
    }

    /// The first `count` non-empty lines (the paper's data cleaning step).
    pub fn clean_lines(&self, count: usize) -> Vec<String> {
        (0..)
            .map(|i| self.line(i))
            .filter(|l| !l.is_empty())
            .take(count)
            .collect()
    }
}

/// A deterministic word-level tokenizer with a hash vocabulary, standing in
/// for BPE: stable ids, bounded vocabulary, padding and truncation.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Vocabulary size (ids are in `0..vocab`).
    pub vocab: usize,
    /// Padding token id (0).
    pub pad_id: i64,
}

impl Tokenizer {
    /// Creates a tokenizer over `vocab` ids.
    pub fn new(vocab: usize) -> Tokenizer {
        Tokenizer { vocab, pad_id: 0 }
    }

    /// Token ids of `text` (whitespace split, hashed into `1..vocab`).
    pub fn encode(&self, text: &str) -> Vec<i64> {
        text.split_whitespace()
            .map(|w| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in w.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                (1 + (h % (self.vocab as u64 - 1))) as i64
            })
            .collect()
    }

    /// Encodes a batch of lines into a `[batch, seq]` i64 tensor with
    /// truncation and right-padding.
    ///
    /// # Errors
    ///
    /// Fails when `lines` is empty or `seq` is zero.
    pub fn encode_batch(&self, lines: &[String], seq: usize) -> Result<Tensor> {
        if lines.is_empty() || seq == 0 {
            return Err(ngb_tensor::TensorError::InvalidArgument(
                "encode_batch requires lines and a nonzero sequence length".into(),
            ));
        }
        let mut data = Vec::with_capacity(lines.len() * seq);
        for line in lines {
            let mut ids = self.encode(line);
            ids.truncate(seq);
            ids.resize(seq, self.pad_id);
            data.extend_from_slice(&ids);
        }
        Tensor::from_i64(data, &[lines.len(), seq])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_with_empty_lines() {
        let c = WikitextSynthetic::default();
        assert_eq!(c.line(5), c.line(5));
        let empties = (0..200).filter(|&i| c.line(i).is_empty()).count();
        assert!(empties > 5 && empties < 80, "{empties}");
    }

    #[test]
    fn clean_lines_removes_empties() {
        let c = WikitextSynthetic::default();
        let lines = c.clean_lines(50);
        assert_eq!(lines.len(), 50);
        assert!(lines.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn tokenizer_is_stable_and_bounded() {
        let t = Tokenizer::new(100);
        let a = t.encode("the memory system");
        let b = t.encode("the memory system");
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&id| (1..100).contains(&id)));
        // same word -> same id
        let c = t.encode("memory memory");
        assert_eq!(c[0], c[1]);
    }

    #[test]
    fn batch_pads_and_truncates() {
        let t = Tokenizer::new(50);
        let lines = vec!["one two".to_string(), "a b c d e f g h".to_string()];
        let batch = t.encode_batch(&lines, 4).unwrap();
        assert_eq!(batch.shape(), &[2, 4]);
        assert_eq!(batch.at_i64(&[0, 2]).unwrap(), 0); // padded
        assert_ne!(batch.at_i64(&[1, 3]).unwrap(), 0); // truncated, not padded
        assert!(t.encode_batch(&[], 4).is_err());
    }

    #[test]
    fn corpus_lengths_vary() {
        let c = WikitextSynthetic::new(1);
        let lens: std::collections::BTreeSet<usize> = c
            .clean_lines(30)
            .iter()
            .map(|l| l.split_whitespace().count())
            .collect();
        assert!(lens.len() > 5);
    }
}
