//! # ngb-graph
//!
//! The operator-graph intermediate representation of NonGEMM Bench: the
//! Rust analogue of a `torch.fx` trace. A [`Graph`] is a topologically
//! ordered list of operator [`Node`]s with concrete shapes; it can be
//!
//! * **classified** — every node is [`OpClass::Gemm`] or
//!   [`OpClass::NonGemm`] with a functional [`NonGemmGroup`] (the paper's
//!   §2.1 taxonomy),
//! * **costed** — [`Graph::node_cost`] returns the device-independent
//!   FLOPs/traffic/kernel-count descriptor used by the analytic platform
//!   models, and
//! * **executed** — the `ngb-exec` crate runs the graph on real tensors
//!   with reproducible synthetic weights, sequentially or on a worker
//!   pool, timing every node (the host-measured profiling mode).
//!
//! # Examples
//!
//! ```
//! use ngb_graph::{GraphBuilder, OpKind};
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input(&[1, 4]);
//! let h = b.push(OpKind::Linear { in_f: 4, out_f: 4, bias: true }, &[x], "fc")?;
//! b.push(OpKind::Relu, &[h], "act")?;
//! let graph = b.finish();
//!
//! assert_eq!(graph.len(), 3);
//! assert_eq!(graph.node(h).out_shape, vec![1, 4]);
//! graph.validate().expect("builder graphs are well-formed");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod graph;
mod infer;
mod op;

pub use graph::{Graph, GraphBuilder, Node, NodeId, StructuralIssue};
pub use infer::{fused_attribution, infer_shape, op_cost, walk_fused};
pub use op::{shard_span, FusedKind, FusedOp, FusedStage, NonGemmGroup, OpClass, OpKind};
