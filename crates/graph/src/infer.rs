//! Static shape inference and cost dispatch for every [`OpKind`].

use ngb_ops::OpCost;
use ngb_tensor::{broadcast_shapes, num_elements, TensorError};

use crate::op::{FusedOp, FusedStage, OpClass, OpKind};

type Result<T> = std::result::Result<T, TensorError>;

/// Walks a fused op's stages in order, re-inferring each stage's output
/// shape from the chained value plus its share of the fused node's inputs,
/// and calling `visit` with every (stage, stage inputs, stage output).
/// Returns the final stage's output shape — the fused node's shape.
///
/// This is how consumers recover the *primitive* operator instances a
/// fused node packs (the microbench extractor harvests stages through it,
/// so the operator registry is opt-level-independent).
///
/// # Errors
///
/// Returns a [`TensorError`] when the fused node's inputs don't cover its
/// stages' operand counts or a stage shape fails to re-infer.
pub fn walk_fused(
    f: &FusedOp,
    inputs: &[Vec<usize>],
    mut visit: impl FnMut(&FusedStage, &[Vec<usize>], &[usize]),
) -> Result<Vec<usize>> {
    let mut cursor = 0usize;
    let mut chain: Option<Vec<usize>> = None;
    for stage in &f.stages {
        let mut stage_inputs: Vec<Vec<usize>> = Vec::with_capacity(stage.extra_inputs + 1);
        if let Some(c) = chain.take() {
            stage_inputs.push(c);
        }
        let extra = inputs
            .get(cursor..cursor + stage.extra_inputs)
            .ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "fused node supplies {} inputs but its stages consume more",
                    inputs.len()
                ))
            })?;
        stage_inputs.extend(extra.iter().cloned());
        cursor += stage.extra_inputs;
        let out = infer_shape(&stage.op, &stage_inputs)?;
        visit(stage, &stage_inputs, &out);
        chain = Some(out);
    }
    if cursor != inputs.len() {
        return Err(TensorError::InvalidArgument(format!(
            "fused node has {} inputs but its stages consume {cursor}",
            inputs.len()
        )));
    }
    chain.ok_or_else(|| TensorError::InvalidArgument("fused node has no stages".into()))
}

/// Pro-rates a fused node's work across the GEMM / non-GEMM classes of its
/// constituent stages, weighted by each stage's analytic cost
/// (FLOPs + memory traffic). Fractions sum to 1. The profiler uses this to
/// keep Figure-6-style group breakdowns comparable between `-O0` and
/// `-O2` runs. Returns an empty vector when the stage shapes don't
/// re-infer (malformed fused node).
pub fn fused_attribution(f: &FusedOp, inputs: &[Vec<usize>]) -> Vec<(OpClass, f64)> {
    let mut weights: Vec<(OpClass, f64)> = Vec::new();
    let walked = walk_fused(f, inputs, |stage, s_in, s_out| {
        let c = op_cost(&stage.op, s_in, s_out);
        let w = (c.flops + c.memory_bytes()).max(1.0);
        let class = stage.op.class();
        match weights.iter_mut().find(|(cl, _)| *cl == class) {
            Some(e) => e.1 += w,
            None => weights.push((class, w)),
        }
    });
    if walked.is_err() {
        return Vec::new();
    }
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    for e in &mut weights {
        e.1 /= total;
    }
    weights
}

fn one(inputs: &[Vec<usize>], op: &'static str) -> Result<Vec<usize>> {
    inputs
        .first()
        .cloned()
        .ok_or_else(|| TensorError::InvalidArgument(format!("{op} requires at least one input")))
}

fn resolve_target(numel: usize, target: &[usize]) -> Result<Vec<usize>> {
    // reuse tensor reshape resolution through a throwaway computation
    let wild = target.iter().filter(|&&d| d == usize::MAX).count();
    if wild > 1 {
        return Err(TensorError::InvalidArgument(
            "at most one inferred dim".into(),
        ));
    }
    let mut out = target.to_vec();
    if wild == 1 {
        let known: usize = target.iter().filter(|&&d| d != usize::MAX).product();
        if known == 0 || !numel.is_multiple_of(known) {
            return Err(TensorError::ShapeMismatch {
                expected: vec![numel],
                actual: target.to_vec(),
                op: "reshape",
            });
        }
        for d in out.iter_mut() {
            if *d == usize::MAX {
                *d = numel / known;
            }
        }
    } else if num_elements(&out) != numel {
        return Err(TensorError::ShapeMismatch {
            expected: vec![numel],
            actual: out,
            op: "reshape",
        });
    }
    Ok(out)
}

/// Infers the output shape of `op` given its input shapes.
///
/// # Errors
///
/// Returns a [`TensorError`] when the input shapes are incompatible with
/// the operator's attributes — the same conditions under which the real
/// kernel would fail.
pub fn infer_shape(op: &OpKind, inputs: &[Vec<usize>]) -> Result<Vec<usize>> {
    match op {
        OpKind::Input | OpKind::InputIds { .. } => one(inputs, "input"),

        OpKind::Linear { in_f, out_f, .. } | OpKind::Conv1dGpt2 { in_f, out_f } => {
            let mut s = one(inputs, "linear")?;
            match s.last() {
                Some(&d) if d == *in_f => {}
                _ => {
                    return Err(TensorError::ShapeMismatch {
                        expected: vec![*in_f],
                        actual: s.clone(),
                        op: "linear",
                    })
                }
            }
            *s.last_mut().expect("checked") = *out_f;
            Ok(s)
        }
        OpKind::Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            ..
        } => {
            let s = one(inputs, "conv2d")?;
            if s.len() != 4 || s[1] != *in_c {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![0, *in_c, 0, 0],
                    actual: s,
                    op: "conv2d",
                });
            }
            let oh = ngb_ops::gemm::conv_out_dim(s[2], *kernel, *stride, *padding);
            let ow = ngb_ops::gemm::conv_out_dim(s[3], *kernel, *stride, *padding);
            Ok(vec![s[0], *out_c, oh, ow])
        }
        OpKind::Matmul => {
            let (a, b) = two(inputs, "matmul")?;
            if a.len() != 2 || b.len() != 2 || a[1] != b[0] {
                return Err(TensorError::ShapeMismatch {
                    expected: a,
                    actual: b,
                    op: "matmul",
                });
            }
            Ok(vec![a[0], b[1]])
        }
        OpKind::Bmm => {
            let (a, b) = two(inputs, "bmm")?;
            if a.len() != 3 || b.len() != 3 || a[0] != b[0] || a[2] != b[1] {
                return Err(TensorError::ShapeMismatch {
                    expected: a,
                    actual: b,
                    op: "bmm",
                });
            }
            Ok(vec![a[0], a[1], b[2]])
        }

        // unary element-wise: shape-preserving
        OpKind::Relu
        | OpKind::Relu6
        | OpKind::Gelu
        | OpKind::GeluTanh
        | OpKind::NewGelu
        | OpKind::Silu
        | OpKind::Sigmoid
        | OpKind::Hardswish
        | OpKind::Neg
        | OpKind::AddScalar(_)
        | OpKind::MulScalar(_)
        | OpKind::DivScalar(_)
        | OpKind::PowScalar(_)
        | OpKind::Sqrt
        | OpKind::Contiguous
        | OpKind::CausalMask
        | OpKind::BoxConvert => one(inputs, "elementwise"),

        OpKind::LayerNorm { dim } | OpKind::RmsNorm { dim } | OpKind::LlamaRmsNorm { dim } => {
            let s = one(inputs, "norm")?;
            if s.last() != Some(dim) {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![*dim],
                    actual: s,
                    op: "norm",
                });
            }
            Ok(s)
        }
        OpKind::BatchNorm2d { c } | OpKind::FrozenBatchNorm2d { c } => {
            let s = one(inputs, "batch_norm")?;
            if s.len() != 4 || s[1] != *c {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![0, *c, 0, 0],
                    actual: s,
                    op: "batch_norm",
                });
            }
            Ok(s)
        }
        OpKind::GroupNorm { groups, c } => {
            let s = one(inputs, "group_norm")?;
            if s.len() != 4 || s[1] != *c || c % groups != 0 {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![0, *c, 0, 0],
                    actual: s,
                    op: "group_norm",
                });
            }
            Ok(s)
        }

        OpKind::Reshape { shape } | OpKind::View { shape } => {
            let s = one(inputs, "reshape")?;
            resolve_target(num_elements(&s), shape)
        }
        OpKind::Permute { perm } => {
            let s = one(inputs, "permute")?;
            if perm.len() != s.len() {
                return Err(TensorError::InvalidPermutation { perm: perm.clone() });
            }
            let mut seen = vec![false; s.len()];
            for &p in perm {
                if p >= s.len() || std::mem::replace(&mut seen[p], true) {
                    return Err(TensorError::InvalidPermutation { perm: perm.clone() });
                }
            }
            Ok(perm.iter().map(|&p| s[p]).collect())
        }
        OpKind::Transpose { d0, d1 } => {
            let mut s = one(inputs, "transpose")?;
            if *d0 >= s.len() || *d1 >= s.len() {
                return Err(TensorError::InvalidDim {
                    dim: (*d0).max(*d1),
                    rank: s.len(),
                });
            }
            s.swap(*d0, *d1);
            Ok(s)
        }
        OpKind::Expand { shape } => {
            let s = one(inputs, "expand")?;
            // validate via broadcast rules
            let b = broadcast_shapes(&s, shape)?;
            if &b != shape {
                return Err(TensorError::ShapeMismatch {
                    expected: shape.clone(),
                    actual: s,
                    op: "expand",
                });
            }
            Ok(shape.clone())
        }
        OpKind::Squeeze { dim } => {
            let mut s = one(inputs, "squeeze")?;
            if *dim >= s.len() || s[*dim] != 1 {
                return Err(TensorError::InvalidArgument(format!(
                    "cannot squeeze dim {dim} of {s:?}"
                )));
            }
            s.remove(*dim);
            Ok(s)
        }
        OpKind::Unsqueeze { dim } => {
            let mut s = one(inputs, "unsqueeze")?;
            if *dim > s.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: s.len(),
                });
            }
            s.insert(*dim, 1);
            Ok(s)
        }
        OpKind::Slice { dim, start, len } => {
            let mut s = one(inputs, "slice")?;
            if *dim >= s.len() || start + len > s[*dim] {
                return Err(TensorError::InvalidArgument(format!(
                    "slice {start}+{len} exceeds dim {dim} of {s:?}"
                )));
            }
            s[*dim] = *len;
            Ok(s)
        }
        OpKind::Roll { dim, .. } => {
            let s = one(inputs, "roll")?;
            if *dim >= s.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: s.len(),
                });
            }
            Ok(s)
        }
        OpKind::Cat { dim } => {
            let first = one(inputs, "cat")?;
            if *dim >= first.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: first.len(),
                });
            }
            let mut out = first.clone();
            out[*dim] = 0;
            for s in inputs {
                if s.len() != first.len()
                    || s.iter()
                        .enumerate()
                        .any(|(i, &d)| i != *dim && d != first[i])
                {
                    return Err(TensorError::ShapeMismatch {
                        expected: first,
                        actual: s.clone(),
                        op: "cat",
                    });
                }
                out[*dim] += s[*dim];
            }
            Ok(out)
        }

        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
            let (a, b) = two(inputs, "binary")?;
            broadcast_shapes(&a, &b)
        }
        OpKind::MeanDim { dim, keepdim } => {
            let mut s = one(inputs, "mean")?;
            if *dim >= s.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: s.len(),
                });
            }
            if *keepdim {
                s[*dim] = 1;
            } else {
                s.remove(*dim);
            }
            Ok(s)
        }

        OpKind::Softmax { dim } | OpKind::LogSoftmax { dim } => {
            let s = one(inputs, "softmax")?;
            if *dim >= s.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: s.len(),
                });
            }
            Ok(s)
        }

        OpKind::MaxPool2d {
            kernel,
            stride,
            padding,
        }
        | OpKind::AvgPool2d {
            kernel,
            stride,
            padding,
        } => {
            let s = one(inputs, "pool")?;
            if s.len() != 4 {
                return Err(TensorError::InvalidArgument("pool requires NCHW".into()));
            }
            let oh = ngb_ops::gemm::conv_out_dim(s[2], *kernel, *stride, *padding);
            let ow = ngb_ops::gemm::conv_out_dim(s[3], *kernel, *stride, *padding);
            Ok(vec![s[0], s[1], oh, ow])
        }
        OpKind::AdaptiveAvgPool2d { oh, ow } => {
            let s = one(inputs, "adaptive_pool")?;
            if s.len() != 4 {
                return Err(TensorError::InvalidArgument("pool requires NCHW".into()));
            }
            Ok(vec![s[0], s[1], *oh, *ow])
        }

        OpKind::Nms { nominal_keep, .. } => {
            let s = one(inputs, "nms")?;
            if s.len() != 2 || s[1] != 4 {
                return Err(TensorError::InvalidArgument(
                    "nms boxes must be [N, 4]".into(),
                ));
            }
            Ok(vec![(*nominal_keep).min(s[0])])
        }
        OpKind::RoiAlign { out, .. } => {
            let (f, r) = two(inputs, "roi_align")?;
            if f.len() != 3 || r.len() != 2 || r[1] != 4 {
                return Err(TensorError::InvalidArgument(
                    "roi_align requires [C,H,W] features and [R,4] rois".into(),
                ));
            }
            Ok(vec![r[0], f[0], *out, *out])
        }

        OpKind::InterpolateNearest { oh, ow } | OpKind::InterpolateBilinear { oh, ow } => {
            let s = one(inputs, "interpolate")?;
            if s.len() != 4 {
                return Err(TensorError::InvalidArgument(
                    "interpolate requires NCHW".into(),
                ));
            }
            Ok(vec![s[0], s[1], *oh, *ow])
        }

        OpKind::Embedding { dim, .. } => {
            let mut s = one(inputs, "embedding")?;
            s.push(*dim);
            Ok(s)
        }

        OpKind::AllReduce => {
            let first = one(inputs, "all_reduce")?;
            for s in inputs {
                if *s != first {
                    return Err(TensorError::ShapeMismatch {
                        expected: first,
                        actual: s.clone(),
                        op: "all_reduce",
                    });
                }
            }
            Ok(first)
        }
        OpKind::AllGather { dim } => {
            let first = one(inputs, "all_gather")?;
            if *dim >= first.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: first.len(),
                });
            }
            let mut out = first.clone();
            out[*dim] = 0;
            for s in inputs {
                if s.len() != first.len()
                    || s.iter()
                        .enumerate()
                        .any(|(i, &d)| i != *dim && d != first[i])
                {
                    return Err(TensorError::ShapeMismatch {
                        expected: first,
                        actual: s.clone(),
                        op: "all_gather",
                    });
                }
                out[*dim] += s[*dim];
            }
            Ok(out)
        }
        OpKind::Transfer => one(inputs, "transfer"),
        OpKind::LinearShard {
            in_f,
            out_f,
            part,
            parts,
            row_split,
            ..
        } => {
            let mut s = one(inputs, "linear_shard")?;
            let (_, len) =
                crate::op::shard_span(if *row_split { *in_f } else { *out_f }, *part, *parts);
            let (expect_in, give_out) = if *row_split {
                (len, *out_f)
            } else {
                (*in_f, len)
            };
            match s.last() {
                Some(&d) if d == expect_in => {}
                _ => {
                    return Err(TensorError::ShapeMismatch {
                        expected: vec![expect_in],
                        actual: s.clone(),
                        op: "linear_shard",
                    })
                }
            }
            *s.last_mut().expect("checked") = give_out;
            Ok(s)
        }

        OpKind::Argmax { dim } => {
            let mut s = one(inputs, "argmax")?;
            if *dim >= s.len() {
                return Err(TensorError::InvalidDim {
                    dim: *dim,
                    rank: s.len(),
                });
            }
            s.remove(*dim);
            Ok(s)
        }
        OpKind::TopK { k } => {
            let mut s = one(inputs, "topk")?;
            match s.last() {
                Some(&d) if *k <= d && *k > 0 => {}
                _ => return Err(TensorError::InvalidArgument("topk k out of range".into())),
            }
            *s.last_mut().expect("checked") = *k;
            Ok(s)
        }

        OpKind::Fused(f) => walk_fused(f, inputs, |_, _, _| {}),
    }
}

fn two(inputs: &[Vec<usize>], op: &'static str) -> Result<(Vec<usize>, Vec<usize>)> {
    if inputs.len() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "{op} requires exactly two inputs, got {}",
            inputs.len()
        )));
    }
    Ok((inputs[0].clone(), inputs[1].clone()))
}

/// Computes the device-independent [`OpCost`] of `op` on the given input
/// shapes and (already inferred) output shape.
pub fn op_cost(op: &OpKind, inputs: &[Vec<usize>], output: &[usize]) -> OpCost {
    let in0 = inputs.first().map(Vec::as_slice).unwrap_or(&[]);
    let n_out = num_elements(output);
    match op {
        OpKind::Input | OpKind::InputIds { .. } => OpCost::metadata(),

        OpKind::Linear { in_f, out_f, bias } => {
            let rows = num_elements(in0) / in_f.max(&1);
            ngb_ops::gemm::linear_cost(rows, *in_f, *out_f, *bias)
        }
        OpKind::Conv1dGpt2 { in_f, out_f } => {
            let rows = num_elements(in0) / in_f.max(&1);
            ngb_ops::gemm::linear_cost(rows, *in_f, *out_f, true)
        }
        OpKind::Conv2d {
            in_c,
            out_c,
            kernel,
            groups,
            ..
        } => {
            let (n, oh, ow) = (output[0], output[2], output[3]);
            ngb_ops::gemm::conv2d_cost(n, *in_c, *out_c, oh, ow, *kernel, *kernel, *groups)
        }
        OpKind::Matmul => {
            let (a, b) = (&inputs[0], &inputs[1]);
            ngb_ops::gemm::matmul_cost(a[0], a[1], b[1])
        }
        OpKind::Bmm => {
            let (a, b) = (&inputs[0], &inputs[1]);
            ngb_ops::gemm::bmm_cost(a[0], a[1], a[2], b[2])
        }

        OpKind::Relu | OpKind::Relu6 => ngb_ops::activation::relu_cost(in0),
        OpKind::Gelu => ngb_ops::activation::gelu_cost(in0),
        OpKind::GeluTanh => ngb_ops::activation::gelu_tanh_cost(in0),
        OpKind::NewGelu => ngb_ops::activation::new_gelu_cost(in0),
        OpKind::Silu => ngb_ops::activation::silu_cost(in0),
        OpKind::Sigmoid => ngb_ops::activation::sigmoid_cost(in0),
        OpKind::Hardswish => ngb_ops::activation::hardswish_cost(in0),

        OpKind::LayerNorm { .. } => ngb_ops::normalization::layer_norm_cost(in0),
        OpKind::RmsNorm { .. } => ngb_ops::normalization::rms_norm_cost(in0),
        OpKind::LlamaRmsNorm { .. } => ngb_ops::normalization::llama_rms_norm_cost(in0),
        OpKind::BatchNorm2d { .. } => ngb_ops::normalization::batch_norm2d_cost(in0),
        OpKind::FrozenBatchNorm2d { .. } => ngb_ops::normalization::frozen_batch_norm2d_cost(in0),
        OpKind::GroupNorm { .. } => ngb_ops::normalization::group_norm_cost(in0),

        // reshape may or may not copy; the conservative static assumption is
        // a view for Reshape/View and a copy for Contiguous.
        OpKind::Reshape { .. } | OpKind::View { .. } => ngb_ops::memory::metadata_cost(),
        OpKind::Permute { .. }
        | OpKind::Transpose { .. }
        | OpKind::Expand { .. }
        | OpKind::Squeeze { .. }
        | OpKind::Unsqueeze { .. }
        | OpKind::Slice { .. } => ngb_ops::memory::metadata_cost(),
        OpKind::Contiguous => ngb_ops::memory::contiguous_cost(in0),
        OpKind::Cat { .. } => ngb_ops::memory::cat_cost(n_out),
        OpKind::Roll { .. } => ngb_ops::memory::roll_cost(in0),

        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
            ngb_ops::arithmetic::binary_cost(output)
        }
        OpKind::Neg
        | OpKind::AddScalar(_)
        | OpKind::MulScalar(_)
        | OpKind::DivScalar(_)
        | OpKind::PowScalar(_)
        | OpKind::Sqrt => ngb_ops::arithmetic::unary_cost(in0),
        OpKind::MeanDim { dim, .. } => ngb_ops::arithmetic::reduce_cost(in0, *dim),
        OpKind::CausalMask => ngb_ops::arithmetic::unary_cost(in0),

        OpKind::Softmax { .. } => ngb_ops::logit::softmax_cost(in0),
        OpKind::LogSoftmax { .. } => ngb_ops::logit::log_softmax_cost(in0),

        OpKind::MaxPool2d { kernel, .. } | OpKind::AvgPool2d { kernel, .. } => {
            ngb_ops::pooling::pool_cost(in0, *kernel, n_out)
        }
        OpKind::AdaptiveAvgPool2d { .. } => ngb_ops::pooling::pool_cost(in0, 1, n_out),

        OpKind::Nms { .. } => ngb_ops::roi::nms_cost(in0.first().copied().unwrap_or(0)),
        OpKind::RoiAlign { out, .. } => {
            let r = inputs.get(1).and_then(|s| s.first()).copied().unwrap_or(0);
            let c = in0.first().copied().unwrap_or(0);
            ngb_ops::roi::roi_align_cost(r, c, *out)
        }
        OpKind::BoxConvert => ngb_ops::arithmetic::unary_cost(in0),

        OpKind::InterpolateNearest { .. } => {
            ngb_ops::interpolate::interpolate_cost(in0, n_out, false)
        }
        OpKind::InterpolateBilinear { .. } => {
            ngb_ops::interpolate::interpolate_cost(in0, n_out, true)
        }

        OpKind::Embedding { dim, .. } => {
            ngb_ops::embedding::embedding_cost(num_elements(in0), *dim)
        }

        // Collectives: accumulate/concatenate/copy every input element
        // once — pure memory-bound non-GEMM work, one kernel each.
        OpKind::AllReduce => OpCost {
            flops: (inputs.len().saturating_sub(1) * n_out) as f64,
            bytes_read: (inputs.len() * n_out * 4) as f64,
            bytes_written: (n_out * 4) as f64,
            kernels: 1,
            dynamic: false,
        },
        OpKind::AllGather { .. } | OpKind::Transfer => OpCost {
            flops: 0.0,
            bytes_read: (n_out * 4) as f64,
            bytes_written: (n_out * 4) as f64,
            kernels: 1,
            dynamic: false,
        },
        OpKind::LinearShard {
            in_f,
            out_f,
            bias,
            part,
            parts,
            row_split,
        } => {
            let (_, len) =
                crate::op::shard_span(if *row_split { *in_f } else { *out_f }, *part, *parts);
            let (k, n) = if *row_split {
                (len, *out_f)
            } else {
                (*in_f, len)
            };
            let rows = num_elements(in0) / k.max(1);
            ngb_ops::gemm::linear_cost(rows, k, n, *bias && (!*row_split || *part == 0))
        }

        OpKind::Argmax { dim } => ngb_ops::reduction::argmax_cost(in0, *dim),
        OpKind::TopK { k } => ngb_ops::reduction::topk_cost(in0, *k),

        OpKind::Fused(f) => {
            let mut stage_costs = Vec::with_capacity(f.stages.len());
            let mut interiors = Vec::with_capacity(f.stages.len());
            if walk_fused(f, inputs, |stage, s_in, s_out| {
                stage_costs.push(op_cost(&stage.op, s_in, s_out));
                interiors.push(num_elements(s_out));
            })
            .is_err()
            {
                return OpCost::metadata();
            }
            // The final stage's output is materialized; everything before it
            // stays in registers, saving one write and one read per element.
            interiors.pop();
            OpCost::fused(&stage_costs, &interiors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shape() {
        let op = OpKind::Linear {
            in_f: 8,
            out_f: 16,
            bias: true,
        };
        assert_eq!(infer_shape(&op, &[vec![2, 5, 8]]).unwrap(), vec![2, 5, 16]);
        assert!(infer_shape(&op, &[vec![2, 5, 9]]).is_err());
    }

    #[test]
    fn conv_shape() {
        let op = OpKind::Conv2d {
            in_c: 3,
            out_c: 64,
            kernel: 7,
            stride: 2,
            padding: 3,
            groups: 1,
            bias: false,
        };
        assert_eq!(
            infer_shape(&op, &[vec![1, 3, 224, 224]]).unwrap(),
            vec![1, 64, 112, 112]
        );
        assert!(infer_shape(&op, &[vec![1, 4, 224, 224]]).is_err());
    }

    #[test]
    fn matmul_bmm_shapes() {
        assert_eq!(
            infer_shape(&OpKind::Matmul, &[vec![2, 3], vec![3, 5]]).unwrap(),
            vec![2, 5]
        );
        assert!(infer_shape(&OpKind::Matmul, &[vec![2, 3], vec![4, 5]]).is_err());
        assert_eq!(
            infer_shape(&OpKind::Bmm, &[vec![4, 2, 3], vec![4, 3, 7]]).unwrap(),
            vec![4, 2, 7]
        );
    }

    #[test]
    fn memory_shapes() {
        assert_eq!(
            infer_shape(
                &OpKind::Reshape {
                    shape: vec![4, usize::MAX]
                },
                &[vec![2, 2, 3]]
            )
            .unwrap(),
            vec![4, 3]
        );
        assert_eq!(
            infer_shape(
                &OpKind::Permute {
                    perm: vec![2, 0, 1]
                },
                &[vec![2, 3, 4]]
            )
            .unwrap(),
            vec![4, 2, 3]
        );
        assert_eq!(
            infer_shape(&OpKind::Transpose { d0: 1, d1: 2 }, &[vec![2, 3, 4]]).unwrap(),
            vec![2, 4, 3]
        );
        assert_eq!(
            infer_shape(
                &OpKind::Slice {
                    dim: 1,
                    start: 2,
                    len: 3
                },
                &[vec![2, 8]]
            )
            .unwrap(),
            vec![2, 3]
        );
        assert_eq!(
            infer_shape(&OpKind::Cat { dim: 1 }, &[vec![2, 3], vec![2, 5]]).unwrap(),
            vec![2, 8]
        );
        assert_eq!(
            infer_shape(&OpKind::Expand { shape: vec![4, 3] }, &[vec![1, 3]]).unwrap(),
            vec![4, 3]
        );
        assert!(infer_shape(&OpKind::Expand { shape: vec![4, 2] }, &[vec![1, 3]]).is_err());
    }

    #[test]
    fn binary_broadcasts() {
        assert_eq!(
            infer_shape(&OpKind::Add, &[vec![2, 1, 4], vec![3, 1]]).unwrap(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn detection_shapes() {
        let nms = OpKind::Nms {
            iou_threshold: 0.5,
            nominal_keep: 100,
        };
        assert_eq!(infer_shape(&nms, &[vec![4663, 4]]).unwrap(), vec![100]);
        assert_eq!(infer_shape(&nms, &[vec![50, 4]]).unwrap(), vec![50]);
        let ra = OpKind::RoiAlign {
            out: 7,
            spatial_scale: 0.25,
        };
        assert_eq!(
            infer_shape(&ra, &[vec![256, 50, 68], vec![100, 4]]).unwrap(),
            vec![100, 256, 7, 7]
        );
    }

    #[test]
    fn nlp_shapes() {
        let e = OpKind::Embedding {
            vocab: 50257,
            dim: 768,
        };
        assert_eq!(infer_shape(&e, &[vec![1, 8]]).unwrap(), vec![1, 8, 768]);
        assert_eq!(
            infer_shape(&OpKind::TopK { k: 5 }, &[vec![1, 50257]]).unwrap(),
            vec![1, 5]
        );
        assert_eq!(
            infer_shape(&OpKind::Argmax { dim: 1 }, &[vec![8, 1000]]).unwrap(),
            vec![8]
        );
    }

    #[test]
    fn costs_dispatch() {
        let lin = OpKind::Linear {
            in_f: 768,
            out_f: 3072,
            bias: true,
        };
        let c = op_cost(&lin, &[vec![1, 8, 768]], &[1, 8, 3072]);
        assert!(c.flops > 2.0 * 8.0 * 768.0 * 3072.0 - 1.0);
        let view = OpKind::View {
            shape: vec![8, 768],
        };
        assert_eq!(op_cost(&view, &[vec![1, 8, 768]], &[8, 768]).kernels, 0);
        let ng = op_cost(&OpKind::NewGelu, &[vec![1, 8, 6400]], &[1, 8, 6400]);
        assert_eq!(ng.kernels, 8);
        let nms = OpKind::Nms {
            iou_threshold: 0.5,
            nominal_keep: 10,
        };
        assert!(op_cost(&nms, &[vec![1000, 4], vec![1000]], &[10]).dynamic);
    }
}
