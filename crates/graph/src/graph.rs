//! The operator graph IR and its builder.

use serde::{Deserialize, Serialize};

use ngb_tensor::TensorError;

use crate::infer::{infer_shape, op_cost};
use crate::op::{NonGemmGroup, OpClass, OpKind};

/// Identifier of a node within one [`Graph`] (its topological position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One structural defect in a [`Graph`], as found by
/// [`Graph::structural_issues`].
///
/// These are the machine-readable facts behind [`Graph::validate`]; the
/// `ngb-analyze` crate maps them onto lint diagnostics and layers further
/// passes (dead-node detection, shape conformance, cost invariants) on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuralIssue {
    /// The node stored at position `pos` carries a different id.
    IdMismatch {
        /// Index into [`Graph::nodes`].
        pos: usize,
        /// The id the node actually carries.
        found: NodeId,
    },
    /// `node` consumes an id that no node in the graph carries.
    InputOutOfRange {
        /// The consuming node's position.
        node: NodeId,
        /// The out-of-range input id.
        input: NodeId,
    },
    /// `node` consumes a node at or after its own position, breaking
    /// topological order.
    NonTopologicalInput {
        /// The consuming node's position.
        node: NodeId,
        /// The later-or-equal input id.
        input: NodeId,
    },
}

impl StructuralIssue {
    /// The position of the node the issue anchors to.
    pub fn node(&self) -> NodeId {
        match *self {
            StructuralIssue::IdMismatch { pos, .. } => NodeId(pos),
            StructuralIssue::InputOutOfRange { node, .. }
            | StructuralIssue::NonTopologicalInput { node, .. } => node,
        }
    }
}

impl std::fmt::Display for StructuralIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StructuralIssue::IdMismatch { pos, found } => {
                write!(f, "node at position {pos} has id {found}")
            }
            StructuralIssue::InputOutOfRange { node, input } => {
                write!(f, "node {node} consumes nonexistent node {input}")
            }
            StructuralIssue::NonTopologicalInput { node, input } => {
                write!(f, "node {node} consumes later node {input}")
            }
        }
    }
}

/// One operator invocation in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id (== its index in [`Graph::nodes`]).
    pub id: NodeId,
    /// The operator.
    pub op: OpKind,
    /// Producer nodes, in argument order.
    pub inputs: Vec<NodeId>,
    /// Statically inferred output shape.
    pub out_shape: Vec<usize>,
    /// Dotted scope name (e.g. `"encoder.3.attn.softmax"`).
    pub name: String,
    /// Identity used to seed this node's weight/input RNG streams when it
    /// differs from `id`. Graph rewrites renumber surviving nodes; carrying
    /// the original id here keeps every materialized parameter bit-identical
    /// to the unoptimized graph. `None` (the default; absent fields
    /// deserialize as `None`, so pre-rewrite serialized graphs still load)
    /// means `id`.
    pub seed_hint: Option<NodeId>,
}

impl Node {
    /// GEMM / non-GEMM classification.
    pub fn class(&self) -> OpClass {
        self.op.class()
    }
}

/// A topologically ordered operator graph for one model at one input
/// configuration (shapes are concrete, like a `torch.fx` trace).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Nodes in topological (construction) order.
    pub nodes: Vec<Node>,
    /// Human-readable model name.
    pub name: String,
}

impl Graph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range (ids are only minted by the builder,
    /// so this indicates a cross-graph mix-up).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterates nodes in topological order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.nodes.iter()
    }

    /// Collects every violated structural invariant: ids must match
    /// positions and every input must precede its consumer (and exist).
    ///
    /// Unlike [`Graph::validate`], which stops at the first defect, this
    /// returns all of them in node order — the raw material for the
    /// `ngb-analyze` structural pass.
    pub fn structural_issues(&self) -> Vec<StructuralIssue> {
        let mut issues = Vec::new();
        let len = self.nodes.len();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id.0 != i {
                issues.push(StructuralIssue::IdMismatch {
                    pos: i,
                    found: node.id,
                });
            }
            for &inp in &node.inputs {
                if inp.0 >= len {
                    issues.push(StructuralIssue::InputOutOfRange {
                        node: NodeId(i),
                        input: inp,
                    });
                } else if inp.0 >= i {
                    issues.push(StructuralIssue::NonTopologicalInput {
                        node: NodeId(i),
                        input: inp,
                    });
                }
            }
        }
        issues
    }

    /// Validates structural invariants: ids match positions and every input
    /// precedes its consumer. Delegates to [`Graph::structural_issues`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        match self.structural_issues().first() {
            Some(issue) => Err(issue.to_string()),
            None => Ok(()),
        }
    }

    /// Total learned parameters across all nodes.
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.op.param_count()).sum()
    }

    /// Number of GEMM-classified nodes.
    pub fn gemm_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.class().is_gemm()).count()
    }

    /// Number of non-GEMM nodes in `group`.
    pub fn group_count(&self, group: NonGemmGroup) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.class().group() == Some(group))
            .count()
    }

    /// Device-independent cost of node `id` given the current static shapes.
    pub fn node_cost(&self, id: NodeId) -> ngb_ops::OpCost {
        let node = self.node(id);
        let input_shapes: Vec<Vec<usize>> = node
            .inputs
            .iter()
            .map(|&i| self.node(i).out_shape.clone())
            .collect();
        op_cost(&node.op, &input_shapes, &node.out_shape)
    }

    /// Histogram of operator names to occurrence counts.
    pub fn op_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *h.entry(n.op.name()).or_insert(0) += 1;
        }
        h
    }

    /// Estimated peak activation memory in bytes: the high-water mark of a
    /// linear scan holding each node's output until its last consumer.
    pub fn peak_activation_bytes(&self) -> usize {
        let mut last_use = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &inp in &node.inputs {
                last_use[inp.0] = node.id.0;
            }
        }
        let mut live = 0usize;
        let mut peak = 0usize;
        let mut release_at: std::collections::BTreeMap<usize, usize> = Default::default();
        for (i, node) in self.nodes.iter().enumerate() {
            // release tensors whose last use has passed
            let expired: Vec<usize> = release_at.range(..=i).map(|(&k, _)| k).collect();
            for k in expired {
                live -= release_at.remove(&k).expect("present");
            }
            let bytes = ngb_tensor::num_elements(&node.out_shape) * 4;
            live += bytes;
            peak = peak.max(live);
            let lu = last_use[i].max(i);
            *release_at.entry(lu + 1).or_insert(0) += bytes;
        }
        peak
    }

    /// Static upper bound on bytes the graph's `Contiguous` nodes copy
    /// into fresh dense buffers (each is a full-output copy when its input
    /// is non-dense). Optimization passes that elide `Contiguous` nodes
    /// drive this toward zero; runtime kernels may beat the bound when the
    /// input is already dense and the copy degenerates to a clone.
    pub fn contiguous_copy_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, crate::OpKind::Contiguous))
            .map(|n| ngb_tensor::num_elements(&n.out_shape) as u64 * 4)
            .sum()
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Node;
    type IntoIter = std::slice::Iter<'a, Node>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter()
    }
}

/// Incrementally builds a valid [`Graph`], inferring every output shape.
///
/// # Examples
///
/// ```
/// use ngb_graph::{GraphBuilder, OpKind};
///
/// # fn main() -> Result<(), ngb_tensor::TensorError> {
/// let mut b = GraphBuilder::new("toy");
/// let x = b.input(&[1, 8]);
/// let h = b.push(OpKind::Linear { in_f: 8, out_f: 4, bias: true }, &[x], "fc")?;
/// let y = b.push(OpKind::Relu, &[h], "act")?;
/// let g = b.finish();
/// assert_eq!(g.node(y).out_shape, vec![1, 4]);
/// assert!(g.validate().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    scope: Vec<String>,
}

impl GraphBuilder {
    /// Starts a new graph named `name`.
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder {
            graph: Graph {
                nodes: Vec::new(),
                name: name.into(),
            },
            scope: Vec::new(),
        }
    }

    /// Pushes a scope segment; subsequent node names are prefixed with it.
    pub fn enter_scope(&mut self, segment: impl Into<String>) -> &mut Self {
        self.scope.push(segment.into());
        self
    }

    /// Pops the innermost scope segment.
    pub fn exit_scope(&mut self) -> &mut Self {
        self.scope.pop();
        self
    }

    fn scoped(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope.join("."), name)
        }
    }

    /// Adds an f32 activation input of `shape`.
    pub fn input(&mut self, shape: &[usize]) -> NodeId {
        let id = NodeId(self.graph.nodes.len());
        self.graph.nodes.push(Node {
            id,
            op: OpKind::Input,
            inputs: Vec::new(),
            out_shape: shape.to_vec(),
            name: self.scoped("input"),
            seed_hint: None,
        });
        id
    }

    /// Adds an f32 activation input of `shape` with an explicit scoped
    /// name instead of the generic `"input"`. Decode-step graphs use this
    /// to give KV-cache slots, position rows, and attention masks stable
    /// names a runtime driver can discover without a models dependency.
    pub fn input_named(&mut self, shape: &[usize], name: &str) -> NodeId {
        let id = NodeId(self.graph.nodes.len());
        self.graph.nodes.push(Node {
            id,
            op: OpKind::Input,
            inputs: Vec::new(),
            out_shape: shape.to_vec(),
            name: self.scoped(name),
            seed_hint: None,
        });
        id
    }

    /// Adds an i64 token-id input of `shape` over a vocabulary of `vocab`.
    pub fn input_ids(&mut self, shape: &[usize], vocab: usize) -> NodeId {
        let id = NodeId(self.graph.nodes.len());
        self.graph.nodes.push(Node {
            id,
            op: OpKind::InputIds { vocab },
            inputs: Vec::new(),
            out_shape: shape.to_vec(),
            name: self.scoped("input_ids"),
            seed_hint: None,
        });
        id
    }

    /// Adds an operator node consuming `inputs`, inferring its output shape.
    ///
    /// # Errors
    ///
    /// Returns the shape-inference error when the operator is incompatible
    /// with its input shapes.
    pub fn push(
        &mut self,
        op: OpKind,
        inputs: &[NodeId],
        name: &str,
    ) -> Result<NodeId, TensorError> {
        let input_shapes: Vec<Vec<usize>> = inputs
            .iter()
            .map(|&i| {
                self.graph
                    .nodes
                    .get(i.0)
                    .map(|n| n.out_shape.clone())
                    .ok_or(TensorError::InvalidArgument(format!(
                        "unknown input node {i}"
                    )))
            })
            .collect::<Result<_, _>>()?;
        let out_shape = infer_shape(&op, &input_shapes)?;
        let id = NodeId(self.graph.nodes.len());
        self.graph.nodes.push(Node {
            id,
            op,
            inputs: inputs.to_vec(),
            out_shape,
            name: self.scoped(name),
            seed_hint: None,
        });
        Ok(id)
    }

    /// Current output shape of `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not minted by this builder.
    pub fn shape(&self, id: NodeId) -> &[usize] {
        &self.graph.nodes[id.0].out_shape
    }

    /// Finishes construction, returning the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        let mut b = GraphBuilder::new("toy");
        let x = b.input(&[1, 8]);
        b.enter_scope("block");
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 8,
                    out_f: 8,
                    bias: true,
                },
                &[x],
                "fc",
            )
            .unwrap();
        let a = b.push(OpKind::Relu, &[h], "act").unwrap();
        let s = b.push(OpKind::Add, &[a, x], "residual").unwrap();
        b.exit_scope();
        b.push(OpKind::Softmax { dim: 1 }, &[s], "head").unwrap();
        b.finish()
    }

    #[test]
    fn builder_produces_valid_graph() {
        let g = toy();
        assert_eq!(g.len(), 5);
        assert!(g.validate().is_ok());
        assert_eq!(g.node(NodeId(1)).name, "block.fc");
        assert_eq!(g.node(NodeId(4)).name, "head");
    }

    #[test]
    fn shape_inference_errors_propagate() {
        let mut b = GraphBuilder::new("bad");
        let x = b.input(&[1, 8]);
        assert!(b
            .push(
                OpKind::Linear {
                    in_f: 9,
                    out_f: 4,
                    bias: false
                },
                &[x],
                "fc"
            )
            .is_err());
        assert!(b.push(OpKind::Relu, &[NodeId(99)], "oops").is_err());
    }

    #[test]
    fn counts_and_histogram() {
        let g = toy();
        assert_eq!(g.gemm_count(), 1);
        assert_eq!(g.group_count(NonGemmGroup::Activation), 1);
        assert_eq!(g.group_count(NonGemmGroup::Arithmetic), 1);
        assert_eq!(g.group_count(NonGemmGroup::LogitComputation), 1);
        assert_eq!(g.op_histogram()["linear"], 1);
        assert_eq!(g.param_count(), 8 * 8 + 8);
    }

    #[test]
    fn node_cost_uses_shapes() {
        let g = toy();
        let c = g.node_cost(NodeId(1));
        assert!(c.flops >= 2.0 * 8.0 * 8.0);
        assert_eq!(g.node_cost(NodeId(0)).kernels, 0);
    }

    #[test]
    fn validate_detects_corruption() {
        let mut g = toy();
        g.nodes[2].inputs = vec![NodeId(4)];
        assert!(g.validate().is_err());
        let mut g2 = toy();
        g2.nodes[1].id = NodeId(7);
        assert!(g2.validate().is_err());
    }

    #[test]
    fn structural_issues_reports_all_defects_in_order() {
        let mut g = toy();
        g.nodes[1].id = NodeId(7);
        g.nodes[2].inputs = vec![NodeId(4)]; // later node (in range, len == 5)
        g.nodes[3].inputs = vec![NodeId(99)]; // out of range
        let issues = g.structural_issues();
        assert_eq!(
            issues,
            vec![
                StructuralIssue::IdMismatch {
                    pos: 1,
                    found: NodeId(7)
                },
                StructuralIssue::NonTopologicalInput {
                    node: NodeId(2),
                    input: NodeId(4)
                },
                StructuralIssue::InputOutOfRange {
                    node: NodeId(3),
                    input: NodeId(99)
                },
            ]
        );
        assert_eq!(issues[0].node(), NodeId(1));
        // validate reports the first issue's message
        assert_eq!(g.validate().unwrap_err(), "node at position 1 has id %7");
        assert!(toy().structural_issues().is_empty());
    }

    #[test]
    fn peak_memory_positive_and_bounded() {
        let g = toy();
        let peak = g.peak_activation_bytes();
        let total: usize = g
            .iter()
            .map(|n| ngb_tensor::num_elements(&n.out_shape) * 4)
            .sum();
        assert!(peak > 0 && peak <= total);
    }

    #[test]
    fn contiguous_copy_bytes_counts_contiguous_nodes() {
        assert_eq!(toy().contiguous_copy_bytes(), 0);
        let mut b = GraphBuilder::new("c");
        let x = b.input(&[2, 3, 4]);
        let t = b
            .push(OpKind::Transpose { d0: 1, d1: 2 }, &[x], "t")
            .unwrap();
        b.push(OpKind::Contiguous, &[t], "c").unwrap();
        let g = b.finish();
        assert_eq!(g.contiguous_copy_bytes(), 2 * 3 * 4 * 4);
    }

    #[test]
    fn graph_serializes() {
        let g = toy();
        let js = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&js).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.node(NodeId(1)).op, g.node(NodeId(1)).op);
    }
}
