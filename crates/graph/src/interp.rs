//! Graph interpreter: executes an operator graph on real tensors.
//!
//! Weights are materialized lazily from a seeded RNG keyed by node id, so a
//! graph is a complete, reproducible executable artifact. The interpreter
//! also records per-node wall-clock time, which is the *measured* (host
//! CPU) profiling mode of the benchmark.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ngb_tensor::random::TensorRng;
use ngb_tensor::{Tensor, TensorError};

use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;

/// Per-node record of one executed inference.
#[derive(Debug, Clone)]
pub struct NodeTiming {
    /// Executed node.
    pub id: NodeId,
    /// Wall-clock execution time of the kernel on the host.
    pub elapsed: Duration,
    /// Actual output shape (may differ from the static shape after dynamic
    /// ops like NMS).
    pub out_shape: Vec<usize>,
}

/// Result of executing a graph.
#[derive(Debug)]
pub struct ExecutionTrace {
    /// Values of the graph's terminal nodes (no consumers), in id order.
    pub outputs: Vec<(NodeId, Tensor)>,
    /// Per-node timings in execution order.
    pub timings: Vec<NodeTiming>,
}

impl ExecutionTrace {
    /// Total measured execution time.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.elapsed).sum()
    }
}

/// Executes graphs with reproducible synthetic weights.
#[derive(Debug)]
pub struct Interpreter {
    seed: u64,
    preflight: bool,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new(0x5eed)
    }
}

impl Interpreter {
    /// Creates an interpreter whose weights derive from `seed`.
    pub fn new(seed: u64) -> Interpreter {
        Interpreter {
            seed,
            preflight: false,
        }
    }

    /// Enables (or disables) the opt-in preflight check: before executing,
    /// the graph's structural invariants are verified and every node's
    /// stored shape is re-inferred, so corruption surfaces as one clear
    /// [`TensorError`] instead of a mid-execution kernel failure.
    #[must_use]
    pub fn preflight(mut self, enabled: bool) -> Interpreter {
        self.preflight = enabled;
        self
    }

    /// Runs the preflight checks on `graph` without executing it.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect or shape-conformance mismatch.
    pub fn check(&self, graph: &Graph) -> Result<(), TensorError> {
        if let Some(issue) = graph.structural_issues().first() {
            return Err(TensorError::InvalidArgument(format!("preflight: {issue}")));
        }
        for node in graph.iter() {
            if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) {
                continue;
            }
            let input_shapes: Vec<Vec<usize>> = node
                .inputs
                .iter()
                .map(|&i| graph.node(i).out_shape.clone())
                .collect();
            let inferred = crate::infer::infer_shape(&node.op, &input_shapes).map_err(|e| {
                TensorError::InvalidArgument(format!(
                    "preflight: node {} ({}) fails shape inference: {e}",
                    node.id, node.name
                ))
            })?;
            if inferred != node.out_shape {
                return Err(TensorError::InvalidArgument(format!(
                    "preflight: node {} ({}) stores shape {:?} but infers {:?}",
                    node.id, node.name, node.out_shape, inferred
                )));
            }
        }
        Ok(())
    }

    fn rng_for(&self, node: NodeId) -> TensorRng {
        TensorRng::seed(self.seed ^ ((node.0 as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Generates a synthetic input tensor for an input node.
    fn make_input(&self, node: &Node) -> Tensor {
        let mut rng = self.rng_for(node.id);
        match &node.op {
            OpKind::InputIds { vocab } => {
                rng.uniform_i64(&node.out_shape, 0, (*vocab).max(1) as i64)
            }
            _ => rng.uniform(&node.out_shape, -1.0, 1.0),
        }
    }

    /// Runs the graph end to end with synthetic inputs, timing every node.
    ///
    /// # Errors
    ///
    /// Propagates any kernel error (a structurally valid graph built through
    /// [`crate::GraphBuilder`] executes without error).
    pub fn run(&self, graph: &Graph) -> Result<ExecutionTrace, TensorError> {
        self.run_with_inputs(graph, &HashMap::new())
    }

    /// Runs the graph, overriding selected input nodes with caller-provided
    /// tensors (e.g. preprocessed dataset samples).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors, including shape mismatches from overridden
    /// inputs.
    pub fn run_with_inputs(
        &self,
        graph: &Graph,
        inputs: &HashMap<NodeId, Tensor>,
    ) -> Result<ExecutionTrace, TensorError> {
        if self.preflight {
            self.check(graph)?;
        }
        let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
        let mut timings = Vec::with_capacity(graph.len());
        let mut consumed = vec![false; graph.len()];
        for node in graph.iter() {
            for &i in &node.inputs {
                match consumed.get_mut(i.0) {
                    Some(slot) => *slot = true,
                    None => {
                        return Err(TensorError::InvalidArgument(format!(
                            "node {} consumes nonexistent node {i}",
                            node.id
                        )))
                    }
                }
            }
        }
        for (pos, node) in graph.iter().enumerate() {
            if node.id.0 != pos {
                return Err(TensorError::InvalidArgument(format!(
                    "node at position {pos} has id {}",
                    node.id
                )));
            }
            let start = Instant::now();
            let out = self.execute_node(node, &values, inputs)?;
            let elapsed = start.elapsed();
            timings.push(NodeTiming {
                id: node.id,
                elapsed,
                out_shape: out.shape().to_vec(),
            });
            values[pos] = Some(out);
        }
        let outputs = graph
            .iter()
            .filter(|n| !consumed[n.id.0])
            .map(|n| {
                let v = values[n.id.0].clone().ok_or_else(|| {
                    TensorError::InvalidArgument(format!("output node {} never executed", n.id))
                })?;
                Ok((n.id, v))
            })
            .collect::<Result<Vec<_>, TensorError>>()?;
        Ok(ExecutionTrace { outputs, timings })
    }

    fn execute_node(
        &self,
        node: &Node,
        values: &[Option<Tensor>],
        overrides: &HashMap<NodeId, Tensor>,
    ) -> Result<Tensor, TensorError> {
        let arg = |i: usize| -> Result<&Tensor, TensorError> {
            node.inputs
                .get(i)
                .and_then(|id| values.get(id.0))
                .and_then(|v| v.as_ref())
                .ok_or_else(|| {
                    TensorError::InvalidArgument(format!(
                        "node {} ({}) is missing input {i}",
                        node.id, node.name
                    ))
                })
        };
        let mut rng = self.rng_for(node.id);
        match &node.op {
            OpKind::Input | OpKind::InputIds { .. } => Ok(overrides
                .get(&node.id)
                .cloned()
                .unwrap_or_else(|| self.make_input(node))),

            OpKind::Linear { in_f, out_f, bias } => {
                let w = rng.kaiming(&[*out_f, *in_f], *in_f);
                let b = bias.then(|| rng.normal(&[*out_f]));
                ngb_ops::gemm::linear(arg(0)?, &w, b.as_ref())
            }
            OpKind::Conv1dGpt2 { in_f, out_f } => {
                let w = rng.kaiming(&[*in_f, *out_f], *in_f);
                let b = rng.normal(&[*out_f]);
                ngb_ops::gemm::conv1d_gpt2(arg(0)?, &w, Some(&b))
            }
            OpKind::Conv2d {
                in_c,
                out_c,
                kernel,
                stride,
                padding,
                groups,
                bias,
            } => {
                let fan_in = (in_c / groups) * kernel * kernel;
                let w = rng.kaiming(&[*out_c, in_c / groups, *kernel, *kernel], fan_in.max(1));
                let b = bias.then(|| rng.normal(&[*out_c]));
                ngb_ops::gemm::conv2d(arg(0)?, &w, b.as_ref(), *stride, *padding, *groups)
            }
            OpKind::Matmul => ngb_ops::gemm::matmul(arg(0)?, arg(1)?),
            OpKind::Bmm => ngb_ops::gemm::bmm(arg(0)?, arg(1)?),

            OpKind::Relu => ngb_ops::activation::relu(arg(0)?),
            OpKind::Relu6 => ngb_ops::activation::relu6(arg(0)?),
            OpKind::Gelu => ngb_ops::activation::gelu(arg(0)?),
            OpKind::GeluTanh => ngb_ops::activation::gelu_tanh(arg(0)?),
            OpKind::NewGelu => ngb_ops::activation::new_gelu(arg(0)?),
            OpKind::Silu => ngb_ops::activation::silu(arg(0)?),
            OpKind::Sigmoid => ngb_ops::activation::sigmoid(arg(0)?),
            OpKind::Hardswish => ngb_ops::activation::hardswish(arg(0)?),

            OpKind::LayerNorm { dim } => {
                let g = rng.uniform(&[*dim], 0.9, 1.1);
                let b = rng.uniform(&[*dim], -0.1, 0.1);
                ngb_ops::normalization::layer_norm(arg(0)?, &g, &b, 1e-5)
            }
            OpKind::RmsNorm { dim } => {
                let g = rng.uniform(&[*dim], 0.9, 1.1);
                ngb_ops::normalization::rms_norm(arg(0)?, &g, 1e-6)
            }
            OpKind::LlamaRmsNorm { dim } => {
                let g = rng.uniform(&[*dim], 0.9, 1.1);
                ngb_ops::normalization::llama_rms_norm(arg(0)?, &g, 1e-6)
            }
            OpKind::BatchNorm2d { c } => {
                let (g, b) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
                let (m, v) = (rng.uniform(&[*c], -0.1, 0.1), rng.uniform(&[*c], 0.8, 1.2));
                ngb_ops::normalization::batch_norm2d(arg(0)?, &g, &b, &m, &v, 1e-5)
            }
            OpKind::FrozenBatchNorm2d { c } => {
                let (g, b) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
                let (m, v) = (rng.uniform(&[*c], -0.1, 0.1), rng.uniform(&[*c], 0.8, 1.2));
                ngb_ops::normalization::frozen_batch_norm2d(arg(0)?, &g, &b, &m, &v, 1e-5)
            }
            OpKind::GroupNorm { groups, c } => {
                let (g, b) = (rng.uniform(&[*c], 0.9, 1.1), rng.uniform(&[*c], -0.1, 0.1));
                ngb_ops::normalization::group_norm(arg(0)?, *groups, &g, &b, 1e-5)
            }

            OpKind::Reshape { shape } => arg(0)?.reshape(&resolve(shape, arg(0)?.numel())),
            OpKind::View { shape } => {
                // views on non-contiguous values fall back to reshape; real
                // models insert `.contiguous()` where PyTorch requires it,
                // and the runtime cost model charges that there.
                arg(0)?.reshape(&resolve(shape, arg(0)?.numel()))
            }
            OpKind::Permute { perm } => arg(0)?.permute(perm),
            OpKind::Transpose { d0, d1 } => arg(0)?.transpose(*d0 as isize, *d1 as isize),
            OpKind::Contiguous => Ok(arg(0)?.contiguous()),
            OpKind::Expand { shape } => arg(0)?.expand(shape),
            OpKind::Squeeze { dim } => arg(0)?.squeeze(*dim as isize),
            OpKind::Unsqueeze { dim } => arg(0)?.unsqueeze(*dim),
            OpKind::Slice { dim, start, len } => arg(0)?.narrow(*dim, *start, *len),
            OpKind::Roll { shift, dim } => ngb_ops::memory::roll(arg(0)?, *shift, *dim),
            OpKind::Cat { dim } => {
                let tensors: Vec<Tensor> = (0..node.inputs.len())
                    .map(|i| arg(i).cloned())
                    .collect::<Result<_, _>>()?;
                Tensor::cat(&tensors, *dim)
            }

            OpKind::Add => ngb_ops::arithmetic::add(arg(0)?, arg(1)?),
            OpKind::Sub => ngb_ops::arithmetic::sub(arg(0)?, arg(1)?),
            OpKind::Mul => ngb_ops::arithmetic::mul(arg(0)?, arg(1)?),
            OpKind::Div => ngb_ops::arithmetic::div(arg(0)?, arg(1)?),
            OpKind::Neg => ngb_ops::arithmetic::neg(arg(0)?),
            OpKind::AddScalar(s) => ngb_ops::arithmetic::add_scalar(arg(0)?, *s),
            OpKind::MulScalar(s) => ngb_ops::arithmetic::mul_scalar(arg(0)?, *s),
            OpKind::DivScalar(s) => ngb_ops::arithmetic::div_scalar(arg(0)?, *s),
            OpKind::PowScalar(e) => ngb_ops::arithmetic::pow_scalar(arg(0)?, *e),
            OpKind::Sqrt => ngb_ops::arithmetic::sqrt(arg(0)?),
            OpKind::MeanDim { dim, keepdim } => {
                ngb_ops::arithmetic::mean_dim(arg(0)?, *dim, *keepdim)
            }
            OpKind::CausalMask => causal_mask(arg(0)?),

            OpKind::Softmax { dim } => ngb_ops::logit::softmax(arg(0)?, *dim),
            OpKind::LogSoftmax { dim } => ngb_ops::logit::log_softmax(arg(0)?, *dim),

            OpKind::MaxPool2d {
                kernel,
                stride,
                padding,
            } => ngb_ops::pooling::max_pool2d(arg(0)?, *kernel, *stride, *padding),
            OpKind::AvgPool2d {
                kernel,
                stride,
                padding,
            } => ngb_ops::pooling::avg_pool2d(arg(0)?, *kernel, *stride, *padding),
            OpKind::AdaptiveAvgPool2d { oh, ow } => {
                ngb_ops::pooling::adaptive_avg_pool2d(arg(0)?, *oh, *ow)
            }

            OpKind::Nms { iou_threshold, .. } => {
                let boxes = arg(0)?;
                let scores = if node.inputs.len() > 1 {
                    arg(1)?.clone()
                } else {
                    rng.uniform(&[boxes.shape()[0]], 0.0, 1.0)
                };
                ngb_ops::roi::nms(boxes, &scores, *iou_threshold)
            }
            OpKind::RoiAlign { out, spatial_scale } => {
                ngb_ops::roi::roi_align(arg(0)?, arg(1)?, *out, *spatial_scale)
            }
            OpKind::BoxConvert => ngb_ops::roi::box_cxcywh_to_xyxy(arg(0)?),

            OpKind::InterpolateNearest { oh, ow } => {
                ngb_ops::interpolate::interpolate_nearest(arg(0)?, *oh, *ow)
            }
            OpKind::InterpolateBilinear { oh, ow } => {
                ngb_ops::interpolate::interpolate_bilinear(arg(0)?, *oh, *ow)
            }

            OpKind::Embedding { vocab, dim } => {
                let table = rng.normal(&[*vocab, *dim]);
                ngb_ops::embedding::embedding(&table, arg(0)?)
            }

            OpKind::Argmax { dim } => ngb_ops::reduction::argmax(arg(0)?, *dim),
            OpKind::TopK { k } => ngb_ops::reduction::topk(arg(0)?, *k).map(|(v, _)| v),
        }
    }
}

fn resolve(shape: &[usize], numel: usize) -> Vec<usize> {
    if shape.contains(&usize::MAX) {
        let known: usize = shape.iter().filter(|&&d| d != usize::MAX).product();
        shape
            .iter()
            .map(|&d| {
                if d == usize::MAX {
                    numel / known.max(1)
                } else {
                    d
                }
            })
            .collect()
    } else {
        shape.to_vec()
    }
}

/// Fills the strict upper triangle of the trailing `[T, T]` dims with a
/// large negative value (causal attention masking).
fn causal_mask(x: &Tensor) -> Result<Tensor, TensorError> {
    let rank = x.rank();
    if rank < 2 {
        return Err(TensorError::InvalidArgument(
            "causal mask requires rank >= 2".into(),
        ));
    }
    let (tq, tk) = (x.shape()[rank - 2], x.shape()[rank - 1]);
    let v = x.to_vec_f32()?;
    let rows = x.numel() / (tq * tk);
    let mut out = v;
    for r in 0..rows {
        for q in 0..tq {
            for k in 0..tk {
                // allow attending to positions <= q (aligned to the right
                // for tk >= tq, matching decoder caches)
                let limit = k as isize - (tk as isize - tq as isize);
                if limit > q as isize {
                    out[r * tq * tk + q * tk + k] = -1e9;
                }
            }
        }
    }
    Tensor::from_vec(out, x.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn mlp_graph() -> Graph {
        let mut b = GraphBuilder::new("mlp");
        let x = b.input(&[2, 16]);
        let h = b
            .push(
                OpKind::Linear {
                    in_f: 16,
                    out_f: 32,
                    bias: true,
                },
                &[x],
                "fc1",
            )
            .unwrap();
        let a = b.push(OpKind::Gelu, &[h], "act").unwrap();
        let o = b
            .push(
                OpKind::Linear {
                    in_f: 32,
                    out_f: 4,
                    bias: true,
                },
                &[a],
                "fc2",
            )
            .unwrap();
        b.push(OpKind::Softmax { dim: 1 }, &[o], "probs").unwrap();
        b.finish()
    }

    #[test]
    fn runs_and_times_every_node() {
        let g = mlp_graph();
        let trace = Interpreter::default().run(&g).unwrap();
        assert_eq!(trace.timings.len(), g.len());
        assert_eq!(trace.outputs.len(), 1);
        let (_, probs) = &trace.outputs[0];
        assert_eq!(probs.shape(), &[2, 4]);
        let sums = probs.reduce_dim(1, false, 0.0, |a, v| a + v).unwrap();
        for s in sums.to_vec_f32().unwrap() {
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(trace.total_time() > Duration::ZERO);
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let g = mlp_graph();
        let a = Interpreter::new(7).run(&g).unwrap();
        let b = Interpreter::new(7).run(&g).unwrap();
        let c = Interpreter::new(8).run(&g).unwrap();
        assert_eq!(a.outputs[0].1, b.outputs[0].1);
        assert_ne!(a.outputs[0].1, c.outputs[0].1);
    }

    #[test]
    fn input_override_is_used() {
        let g = mlp_graph();
        let x = Tensor::zeros(&[2, 16]);
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), x);
        let t = Interpreter::default().run_with_inputs(&g, &inputs).unwrap();
        // zero input -> both rows identical
        let p = t.outputs[0].1.to_vec_f32().unwrap();
        assert_eq!(&p[0..4], &p[4..8]);
    }

    #[test]
    fn static_shapes_match_actual_for_static_ops() {
        let g = mlp_graph();
        let t = Interpreter::default().run(&g).unwrap();
        for (node, timing) in g.iter().zip(&t.timings) {
            assert_eq!(node.out_shape, timing.out_shape, "node {}", node.name);
        }
    }

    #[test]
    fn dynamic_nms_subgraph_executes() {
        let mut b = GraphBuilder::new("det");
        let boxes = b.input(&[64, 4]);
        let scores = b.input(&[64]);
        let keep = b
            .push(
                OpKind::Nms {
                    iou_threshold: 0.5,
                    nominal_keep: 32,
                },
                &[boxes, scores],
                "nms",
            )
            .unwrap();
        let g = b.finish();
        let t = Interpreter::default().run(&g).unwrap();
        let kept = &t.outputs.iter().find(|(id, _)| *id == keep).unwrap().1;
        assert!(kept.numel() <= 64);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut b = GraphBuilder::new("mask");
        let x = b.input(&[1, 2, 3, 3]);
        b.push(OpKind::CausalMask, &[x], "mask").unwrap();
        let g = b.finish();
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), Tensor::ones(&[1, 2, 3, 3]));
        let t = Interpreter::default().run_with_inputs(&g, &inputs).unwrap();
        let m = &t.outputs[0].1;
        assert_eq!(m.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert!(m.at(&[0, 0, 0, 1]).unwrap() < -1e8);
        assert!(m.at(&[0, 0, 1, 2]).unwrap() < -1e8);
        assert_eq!(m.at(&[0, 0, 2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn corrupted_graph_errors_instead_of_panicking() {
        // dangling input id: typed error, not an index panic
        let mut g = mlp_graph();
        g.nodes[2].inputs = vec![NodeId(99)];
        let err = Interpreter::default().run(&g).unwrap_err();
        assert!(err.to_string().contains("nonexistent node %99"), "{err}");

        // id out of step with position: typed error, not a slot mix-up
        let mut g2 = mlp_graph();
        g2.nodes[1].id = NodeId(3);
        let err2 = Interpreter::default().run(&g2).unwrap_err();
        assert!(err2.to_string().contains("position 1 has id %3"), "{err2}");
    }

    #[test]
    fn preflight_rejects_wrong_stored_shape_before_execution() {
        let mut g = mlp_graph();
        g.nodes[2].out_shape = vec![2, 33]; // gelu output lies about its shape
                                            // without preflight this silently executes (the kernel recomputes)
        assert!(Interpreter::default().run(&g).is_ok());
        let err = Interpreter::default().preflight(true).run(&g).unwrap_err();
        assert!(err.to_string().contains("preflight"), "{err}");
        assert!(err.to_string().contains("[2, 33]"), "{err}");
        // a clean graph passes preflight
        assert!(Interpreter::default()
            .preflight(true)
            .run(&mlp_graph())
            .is_ok());
    }

    #[test]
    fn embedding_pipeline_executes() {
        let mut b = GraphBuilder::new("emb");
        let ids = b.input_ids(&[1, 6], 100);
        let e = b
            .push(OpKind::Embedding { vocab: 100, dim: 8 }, &[ids], "wte")
            .unwrap();
        b.push(OpKind::LayerNorm { dim: 8 }, &[e], "ln").unwrap();
        let g = b.finish();
        let t = Interpreter::default().run(&g).unwrap();
        assert_eq!(t.outputs[0].1.shape(), &[1, 6, 8]);
    }
}
