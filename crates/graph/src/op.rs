//! Operator kinds, the GEMM / non-GEMM taxonomy, and per-op metadata.

use serde::{Deserialize, Serialize};

/// The paper's non-GEMM operator groups (Table 2 plus the auxiliary groups
/// needed to cover the full model suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NonGemmGroup {
    /// ReLU/GELU/SiLU/… non-linearities.
    Activation,
    /// LayerNorm/BatchNorm/RMSNorm/GroupNorm.
    Normalization,
    /// Layout manipulation: view/reshape/permute/contiguous/cat/split/….
    Memory,
    /// Element-wise and scalar arithmetic, reductions.
    Arithmetic,
    /// Softmax-family logit computation.
    LogitComputation,
    /// NMS/RoIAlign/box utilities (data-dependent detection ops).
    RoiSelection,
    /// Nearest/bilinear resampling.
    Interpolation,
    /// Max/avg/adaptive pooling.
    Pooling,
    /// Embedding table lookup and gather.
    Embedding,
    /// Multi-device collectives and transfers (all-reduce, all-gather,
    /// PCIe copies) inserted by the `ngb-shard` partitioner.
    Collective,
    /// Everything else (argmax/top-k heads, masks, …).
    Other,
}

impl NonGemmGroup {
    /// Human-readable label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            NonGemmGroup::Activation => "Activation",
            NonGemmGroup::Normalization => "Normalization",
            NonGemmGroup::Memory => "Memory",
            NonGemmGroup::Arithmetic => "Arithmetic",
            NonGemmGroup::LogitComputation => "Logit",
            NonGemmGroup::RoiSelection => "RoI",
            NonGemmGroup::Interpolation => "Interpolation",
            NonGemmGroup::Pooling => "Pooling",
            NonGemmGroup::Embedding => "Embedding",
            NonGemmGroup::Collective => "Collective",
            NonGemmGroup::Other => "Other",
        }
    }

    /// All groups, in report order.
    pub fn all() -> &'static [NonGemmGroup] {
        &[
            NonGemmGroup::Normalization,
            NonGemmGroup::Activation,
            NonGemmGroup::Memory,
            NonGemmGroup::Arithmetic,
            NonGemmGroup::LogitComputation,
            NonGemmGroup::RoiSelection,
            NonGemmGroup::Interpolation,
            NonGemmGroup::Pooling,
            NonGemmGroup::Embedding,
            NonGemmGroup::Collective,
            NonGemmGroup::Other,
        ]
    }
}

impl std::fmt::Display for NonGemmGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification of an operator: the paper's primary split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Representable as matrix multiplication (Linear, Conv2d, BMM, …).
    Gemm,
    /// Everything else, tagged with its functional group.
    NonGemm(NonGemmGroup),
}

impl OpClass {
    /// Whether this is a GEMM-based operator.
    pub fn is_gemm(self) -> bool {
        matches!(self, OpClass::Gemm)
    }

    /// The non-GEMM group, if any.
    pub fn group(self) -> Option<NonGemmGroup> {
        match self {
            OpClass::Gemm => None,
            OpClass::NonGemm(g) => Some(g),
        }
    }
}

/// Every operator kind that can appear in a NonGEMM Bench model graph.
///
/// Attributes (kernel sizes, dims, scalars) are stored inline; weights are
/// implicit in the node (materialized from a seeded RNG at execution time),
/// matching the operator-graph granularity the paper profiles at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    // ---------------------------------------------------------------- inputs
    /// Graph input: an f32 activation tensor.
    Input,
    /// Graph input: i64 token ids drawn from `vocab`.
    InputIds {
        /// Vocabulary size used to bound synthetic ids.
        vocab: usize,
    },

    // ------------------------------------------------------------------ GEMM
    /// Fully-connected layer `[.., in] -> [.., out]`.
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Whether a bias is added.
        bias: bool,
    },
    /// GPT-2's `Conv1D` (transposed-weight linear).
    Conv1dGpt2 {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// 2-D convolution on NCHW.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Channel groups (`in_c` for depthwise).
        groups: usize,
        /// Whether a bias is added.
        bias: bool,
    },
    /// Rank-2 matrix multiplication of the two inputs.
    Matmul,
    /// Batched matrix multiplication `[B,M,K]@[B,K,N]`.
    Bmm,

    // ------------------------------------------------------------ activation
    /// `max(0, x)`.
    Relu,
    /// `clamp(x, 0, 6)`.
    Relu6,
    /// Exact (erf) GELU — the fused library kernel.
    Gelu,
    /// Tanh-approximated GELU — fused.
    GeluTanh,
    /// Hugging Face `NewGELU` — decomposes into 8 kernels in eager mode.
    NewGelu,
    /// `x * sigmoid(x)` (Llama).
    Silu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hard-swish (MobileNet).
    Hardswish,

    // --------------------------------------------------------- normalization
    /// LayerNorm over the last dim of size `dim`.
    LayerNorm {
        /// Normalized (last) dimension size.
        dim: usize,
    },
    /// Fused RMS norm over the last dim.
    RmsNorm {
        /// Normalized (last) dimension size.
        dim: usize,
    },
    /// Llama's decomposed RMS norm — 6 kernels in eager mode.
    LlamaRmsNorm {
        /// Normalized (last) dimension size.
        dim: usize,
    },
    /// Inference BatchNorm2d over `c` channels.
    BatchNorm2d {
        /// Channel count.
        c: usize,
    },
    /// Torchvision's hand-rolled scale-and-shift batch norm — 4 kernels.
    FrozenBatchNorm2d {
        /// Channel count.
        c: usize,
    },
    /// GroupNorm with `groups` groups over `c` channels.
    GroupNorm {
        /// Number of groups.
        groups: usize,
        /// Channel count.
        c: usize,
    },

    // ---------------------------------------------------------------- memory
    /// Copy-if-needed reshape (`torch.reshape`).
    Reshape {
        /// Target shape (`usize::MAX` = inferred).
        shape: Vec<usize>,
    },
    /// Zero-copy view (requires contiguous input).
    View {
        /// Target shape (`usize::MAX` = inferred).
        shape: Vec<usize>,
    },
    /// Zero-copy axis permutation.
    Permute {
        /// Axis order.
        perm: Vec<usize>,
    },
    /// Zero-copy swap of two dims.
    Transpose {
        /// First dim.
        d0: usize,
        /// Second dim.
        d1: usize,
    },
    /// Materialize a dense row-major copy.
    Contiguous,
    /// Zero-copy broadcast expansion.
    Expand {
        /// Target shape.
        shape: Vec<usize>,
    },
    /// Remove a size-1 dim.
    Squeeze {
        /// Dim to remove.
        dim: usize,
    },
    /// Insert a size-1 dim.
    Unsqueeze {
        /// Insertion position.
        dim: usize,
    },
    /// Zero-copy slice along `dim` (one output of a `split`).
    Slice {
        /// Sliced dim.
        dim: usize,
        /// Start element.
        start: usize,
        /// Slice length.
        len: usize,
    },
    /// Copying concatenation of all inputs along `dim`.
    Cat {
        /// Concatenated dim.
        dim: usize,
    },
    /// Cyclic roll along `dim` (`torch.roll`, Swin's shifted windows).
    Roll {
        /// Signed shift amount.
        shift: isize,
        /// Rolled dim.
        dim: usize,
    },

    // ------------------------------------------------------------ arithmetic
    /// Broadcasting element-wise add of two inputs.
    Add,
    /// Broadcasting element-wise subtract.
    Sub,
    /// Broadcasting element-wise multiply.
    Mul,
    /// Broadcasting element-wise (true) division.
    Div,
    /// Element-wise negation.
    Neg,
    /// Add a scalar.
    AddScalar(f32),
    /// Multiply by a scalar (attention's `1/sqrt(d)`).
    MulScalar(f32),
    /// Divide by a scalar.
    DivScalar(f32),
    /// Element-wise power.
    PowScalar(f32),
    /// Element-wise square root.
    Sqrt,
    /// Mean over `dim`.
    MeanDim {
        /// Reduced dim.
        dim: usize,
        /// Keep the reduced dim as size 1.
        keepdim: bool,
    },
    /// Causal (upper-triangular) mask fill with `-inf` on `[.., T, T]`
    /// attention scores.
    CausalMask,

    // ----------------------------------------------------------------- logit
    /// Numerically-stable softmax over `dim`.
    Softmax {
        /// Softmaxed dim.
        dim: usize,
    },
    /// Log-softmax over `dim`.
    LogSoftmax {
        /// Softmaxed dim.
        dim: usize,
    },

    // --------------------------------------------------------------- pooling
    /// Square max pooling.
    MaxPool2d {
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Square average pooling.
    AvgPool2d {
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Adaptive average pooling to a fixed grid.
    AdaptiveAvgPool2d {
        /// Output height.
        oh: usize,
        /// Output width.
        ow: usize,
    },

    // ------------------------------------------------------------------- RoI
    /// Greedy non-maximum suppression over `[N,4]` boxes + `[N]` scores.
    Nms {
        /// IoU suppression threshold.
        iou_threshold: f32,
        /// Nominal number of boxes kept (for static shape propagation; the
        /// real count is data-dependent).
        nominal_keep: usize,
    },
    /// RoIAlign of `[C,H,W]` features over `[R,4]` rois.
    RoiAlign {
        /// Output grid size.
        out: usize,
        /// Box-to-feature scale.
        spatial_scale: f32,
    },
    /// Convert `(cx,cy,w,h)` boxes to corners.
    BoxConvert,

    // --------------------------------------------------------- interpolation
    /// Nearest-neighbor resize.
    InterpolateNearest {
        /// Output height.
        oh: usize,
        /// Output width.
        ow: usize,
    },
    /// Bilinear resize.
    InterpolateBilinear {
        /// Output height.
        oh: usize,
        /// Output width.
        ow: usize,
    },

    // ------------------------------------------------------------- embedding
    /// Table lookup `[V,D]` by i64 ids.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dim.
        dim: usize,
    },

    // ------------------------------------------------------------ collective
    /// Element-wise sum of all inputs (equal shapes) — the reduction half
    /// of a tensor-parallel row split. Partial sums are accumulated in
    /// input (rank) order, so results are deterministic but float-reorder
    /// equivalent (not bitwise) to the unsplit GEMM.
    AllReduce,
    /// Copying concatenation of per-device shards along `dim` — the
    /// gather half of a tensor-parallel column split. Bit-identical to
    /// the unsplit result because every element is computed once.
    AllGather {
        /// Concatenated (shard) dim.
        dim: usize,
    },
    /// A cross-device copy over the interconnect: executes as a dense
    /// copy, and the sharded executor charges the modeled PCIe latency
    /// for its bytes into the profile.
    Transfer,
    /// One tensor-parallel shard of a [`OpKind::Linear`] layer. The full
    /// `[out_f, in_f]` weight (and bias) is materialized from the
    /// *original* node's RNG stream (via `seed_hint`) and then sliced, so
    /// shard weights are bitwise slices of the unsplit weight.
    LinearShard {
        /// Full-layer input features.
        in_f: usize,
        /// Full-layer output features.
        out_f: usize,
        /// Whether the full layer adds a bias.
        bias: bool,
        /// This shard's index in `0..parts`.
        part: usize,
        /// Total number of shards.
        parts: usize,
        /// `false`: column-parallel — slice output features; combine with
        /// [`OpKind::AllGather`]. `true`: row-parallel — slice input
        /// features (the operand arrives pre-sliced); combine with
        /// [`OpKind::AllReduce`], bias applied by `part` 0 only.
        row_split: bool,
    },

    // ------------------------------------------------------------- reduction
    /// Argmax over `dim` (i64 output).
    Argmax {
        /// Reduced dim.
        dim: usize,
    },
    /// Top-k over the last dim (values output).
    TopK {
        /// Number of entries kept.
        k: usize,
    },

    // ----------------------------------------------------------------- fused
    /// A composite node produced by the `ngb-opt` graph rewriter: several
    /// primitive stages executed as one kernel, with interior activations
    /// kept in registers/cache instead of being materialized through the
    /// arena.
    Fused(FusedOp),
}

/// The fusion family a [`OpKind::Fused`] node was built by. Determines the
/// fused kernel strategy at execution time (e.g. BN folding for
/// [`FusedKind::ConvBnAct`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusedKind {
    /// `Conv2d → BatchNorm2d/FrozenBatchNorm2d [→ ReLU/ReLU6]`, executed as
    /// one convolution with the BN folded into the weights (reorders FP
    /// arithmetic; equivalence is tolerance-based).
    ConvBnAct,
    /// A GEMM producer (`Linear`/`Conv1dGpt2`/`Matmul`/`Bmm`) with a chain
    /// of single-consumer pointwise epilogues applied in the output loop.
    GemmEpilogue,
    /// A chain of single-consumer unary element-wise ops collapsed into one
    /// pass over the data.
    ElementwiseChain,
    /// `Matmul/Bmm → scale [→ mask/add] → Softmax`: the attention-score
    /// prologue flagged by `ngb-analyze`'s `FuseAttention` lint.
    AttentionPrologue,
}

impl FusedKind {
    /// Stable report name for a fused node of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FusedKind::ConvBnAct => "fused_conv_bn_act",
            FusedKind::GemmEpilogue => "fused_gemm_epilogue",
            FusedKind::ElementwiseChain => "fused_elementwise",
            FusedKind::AttentionPrologue => "fused_attention",
        }
    }
}

/// One primitive stage of a [`FusedOp`], in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedStage {
    /// The primitive operator this stage executes.
    pub op: OpKind,
    /// Seed identity of the original node, so weight/parameter RNG streams
    /// are unchanged by the rewrite (see `rng_for` in `ngb-exec`).
    pub seed_id: usize,
    /// How many of the fused node's inputs this stage consumes, in order.
    /// Stage 0 has no chained value, so all of its operands are "extra";
    /// later stages receive the previous stage's output as operand 0 plus
    /// `extra_inputs` more from the fused node's input list.
    pub extra_inputs: usize,
}

/// The payload of [`OpKind::Fused`]: an ordered pipeline of primitive
/// stages. The fused node's inputs are the concatenation of every stage's
/// extra inputs; its output is the last stage's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedOp {
    /// Which fusion family built this node.
    pub kind: FusedKind,
    /// The constituent stages, in execution order.
    pub stages: Vec<FusedStage>,
}

impl FusedOp {
    /// Total number of graph inputs the fused node consumes.
    pub fn total_inputs(&self) -> usize {
        self.stages.iter().map(|s| s.extra_inputs).sum()
    }
}

impl OpKind {
    /// A short stable name for reports (`"conv2d"`, `"layer_norm"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::InputIds { .. } => "input_ids",
            OpKind::Linear { .. } => "linear",
            OpKind::Conv1dGpt2 { .. } => "conv1d_gpt2",
            OpKind::Conv2d { .. } => "conv2d",
            OpKind::Matmul => "matmul",
            OpKind::Bmm => "bmm",
            OpKind::Relu => "relu",
            OpKind::Relu6 => "relu6",
            OpKind::Gelu => "gelu",
            OpKind::GeluTanh => "gelu_tanh",
            OpKind::NewGelu => "new_gelu",
            OpKind::Silu => "silu",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Hardswish => "hardswish",
            OpKind::LayerNorm { .. } => "layer_norm",
            OpKind::RmsNorm { .. } => "rms_norm",
            OpKind::LlamaRmsNorm { .. } => "llama_rms_norm",
            OpKind::BatchNorm2d { .. } => "batch_norm2d",
            OpKind::FrozenBatchNorm2d { .. } => "frozen_batch_norm2d",
            OpKind::GroupNorm { .. } => "group_norm",
            OpKind::Reshape { .. } => "reshape",
            OpKind::View { .. } => "view",
            OpKind::Permute { .. } => "permute",
            OpKind::Transpose { .. } => "transpose",
            OpKind::Contiguous => "contiguous",
            OpKind::Expand { .. } => "expand",
            OpKind::Squeeze { .. } => "squeeze",
            OpKind::Unsqueeze { .. } => "unsqueeze",
            OpKind::Slice { .. } => "slice",
            OpKind::Cat { .. } => "cat",
            OpKind::Roll { .. } => "roll",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Neg => "neg",
            OpKind::AddScalar(_) => "add_scalar",
            OpKind::MulScalar(_) => "mul_scalar",
            OpKind::DivScalar(_) => "div_scalar",
            OpKind::PowScalar(_) => "pow",
            OpKind::Sqrt => "sqrt",
            OpKind::MeanDim { .. } => "mean",
            OpKind::CausalMask => "causal_mask",
            OpKind::Softmax { .. } => "softmax",
            OpKind::LogSoftmax { .. } => "log_softmax",
            OpKind::MaxPool2d { .. } => "max_pool2d",
            OpKind::AvgPool2d { .. } => "avg_pool2d",
            OpKind::AdaptiveAvgPool2d { .. } => "adaptive_avg_pool2d",
            OpKind::Nms { .. } => "nms",
            OpKind::RoiAlign { .. } => "roi_align",
            OpKind::BoxConvert => "box_convert",
            OpKind::InterpolateNearest { .. } => "interpolate_nearest",
            OpKind::InterpolateBilinear { .. } => "interpolate_bilinear",
            OpKind::Embedding { .. } => "embedding",
            OpKind::AllReduce => "all_reduce",
            OpKind::AllGather { .. } => "all_gather",
            OpKind::Transfer => "transfer",
            OpKind::LinearShard { .. } => "linear_shard",
            OpKind::Argmax { .. } => "argmax",
            OpKind::TopK { .. } => "topk",
            OpKind::Fused(f) => f.kind.name(),
        }
    }

    /// The GEMM / non-GEMM classification of this operator (paper §2.1).
    pub fn class(&self) -> OpClass {
        use NonGemmGroup as G;
        match self {
            OpKind::Linear { .. }
            | OpKind::Conv1dGpt2 { .. }
            | OpKind::Conv2d { .. }
            | OpKind::Matmul
            | OpKind::Bmm
            | OpKind::LinearShard { .. } => OpClass::Gemm,

            OpKind::AllReduce | OpKind::AllGather { .. } | OpKind::Transfer => {
                OpClass::NonGemm(G::Collective)
            }

            OpKind::Relu
            | OpKind::Relu6
            | OpKind::Gelu
            | OpKind::GeluTanh
            | OpKind::NewGelu
            | OpKind::Silu
            | OpKind::Sigmoid
            | OpKind::Hardswish => OpClass::NonGemm(G::Activation),

            OpKind::LayerNorm { .. }
            | OpKind::RmsNorm { .. }
            | OpKind::LlamaRmsNorm { .. }
            | OpKind::BatchNorm2d { .. }
            | OpKind::FrozenBatchNorm2d { .. }
            | OpKind::GroupNorm { .. } => OpClass::NonGemm(G::Normalization),

            OpKind::Reshape { .. }
            | OpKind::View { .. }
            | OpKind::Permute { .. }
            | OpKind::Transpose { .. }
            | OpKind::Contiguous
            | OpKind::Expand { .. }
            | OpKind::Squeeze { .. }
            | OpKind::Unsqueeze { .. }
            | OpKind::Slice { .. }
            | OpKind::Cat { .. }
            | OpKind::Roll { .. } => OpClass::NonGemm(G::Memory),

            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Neg
            | OpKind::AddScalar(_)
            | OpKind::MulScalar(_)
            | OpKind::DivScalar(_)
            | OpKind::PowScalar(_)
            | OpKind::Sqrt
            | OpKind::MeanDim { .. }
            | OpKind::CausalMask => OpClass::NonGemm(G::Arithmetic),

            OpKind::Softmax { .. } | OpKind::LogSoftmax { .. } => {
                OpClass::NonGemm(G::LogitComputation)
            }

            OpKind::MaxPool2d { .. }
            | OpKind::AvgPool2d { .. }
            | OpKind::AdaptiveAvgPool2d { .. } => OpClass::NonGemm(G::Pooling),

            OpKind::Nms { .. } | OpKind::RoiAlign { .. } | OpKind::BoxConvert => {
                OpClass::NonGemm(G::RoiSelection)
            }

            OpKind::InterpolateNearest { .. } | OpKind::InterpolateBilinear { .. } => {
                OpClass::NonGemm(G::Interpolation)
            }

            OpKind::Embedding { .. } => OpClass::NonGemm(G::Embedding),

            OpKind::Argmax { .. }
            | OpKind::TopK { .. }
            | OpKind::Input
            | OpKind::InputIds { .. } => OpClass::NonGemm(G::Other),

            // A fused node is classified by its dominant stage: the GEMM
            // head for conv/linear/attention fusions, the first stage for a
            // pure element-wise chain. The profiler re-attributes latency
            // to constituent groups separately (see `fused_attribution`).
            OpKind::Fused(f) => match f.kind {
                FusedKind::ElementwiseChain => f
                    .stages
                    .first()
                    .map(|s| s.op.class())
                    .unwrap_or(OpClass::NonGemm(G::Arithmetic)),
                _ => OpClass::Gemm,
            },
        }
    }

    /// Number of learned parameters this operator carries.
    pub fn param_count(&self) -> usize {
        match self {
            OpKind::Linear { in_f, out_f, bias } => in_f * out_f + if *bias { *out_f } else { 0 },
            OpKind::Conv1dGpt2 { in_f, out_f } => in_f * out_f + out_f,
            OpKind::Conv2d {
                in_c,
                out_c,
                kernel,
                groups,
                bias,
                ..
            } => out_c * (in_c / groups.max(&1)) * kernel * kernel + if *bias { *out_c } else { 0 },
            OpKind::LayerNorm { dim } | OpKind::RmsNorm { dim } | OpKind::LlamaRmsNorm { dim } => {
                2 * dim
            }
            OpKind::BatchNorm2d { c } | OpKind::FrozenBatchNorm2d { c } => 4 * c,
            OpKind::GroupNorm { c, .. } => 2 * c,
            OpKind::Embedding { vocab, dim } => vocab * dim,
            OpKind::LinearShard {
                in_f,
                out_f,
                bias,
                part,
                parts,
                row_split,
            } => {
                let (_, len) = shard_span(if *row_split { *in_f } else { *out_f }, *part, *parts);
                let weight = len * if *row_split { *out_f } else { *in_f };
                let bias_len = match (*bias, *row_split) {
                    (false, _) => 0,
                    (true, false) => len, // its slice of the bias
                    (true, true) => {
                        if *part == 0 {
                            *out_f
                        } else {
                            0
                        }
                    } // part 0 owns the bias
                };
                weight + bias_len
            }
            OpKind::Fused(f) => f.stages.iter().map(|s| s.op.param_count()).sum(),
            _ => 0,
        }
    }

    /// Whether the op's output depends on input *data* (Table 2
    /// "Dynamicity").
    pub fn is_dynamic(&self) -> bool {
        if let OpKind::Fused(f) = self {
            return f.stages.iter().any(|s| s.op.is_dynamic());
        }
        matches!(self, OpKind::Nms { .. } | OpKind::RoiAlign { .. })
    }

    /// Whether the op applies a non-linear function (Table 2
    /// "Non Linearity").
    pub fn is_nonlinear(&self) -> bool {
        if let OpKind::Fused(f) = self {
            return f.stages.iter().any(|s| s.op.is_nonlinear());
        }
        matches!(
            self,
            OpKind::Gelu
                | OpKind::GeluTanh
                | OpKind::NewGelu
                | OpKind::Silu
                | OpKind::Sigmoid
                | OpKind::Hardswish
                | OpKind::LayerNorm { .. }
                | OpKind::RmsNorm { .. }
                | OpKind::LlamaRmsNorm { .. }
                | OpKind::BatchNorm2d { .. }
                | OpKind::FrozenBatchNorm2d { .. }
                | OpKind::GroupNorm { .. }
                | OpKind::Softmax { .. }
                | OpKind::LogSoftmax { .. }
                | OpKind::Sqrt
                | OpKind::PowScalar(_)
        )
    }

    /// Whether the op reduces along a dimension (Table 2 "Reduction").
    pub fn is_reduction(&self) -> bool {
        if let OpKind::Fused(f) = self {
            return f.stages.iter().any(|s| s.op.is_reduction());
        }
        matches!(
            self,
            OpKind::LayerNorm { .. }
                | OpKind::RmsNorm { .. }
                | OpKind::LlamaRmsNorm { .. }
                | OpKind::BatchNorm2d { .. }
                | OpKind::FrozenBatchNorm2d { .. }
                | OpKind::GroupNorm { .. }
                | OpKind::Softmax { .. }
                | OpKind::LogSoftmax { .. }
                | OpKind::MeanDim { .. }
                | OpKind::Argmax { .. }
                | OpKind::TopK { .. }
                | OpKind::MaxPool2d { .. }
                | OpKind::AvgPool2d { .. }
                | OpKind::AdaptiveAvgPool2d { .. }
                | OpKind::AllReduce
        )
    }

    /// Whether the op is a multi-device collective or interconnect
    /// transfer inserted by the `ngb-shard` partitioner. Rewrite passes
    /// must never fuse through these nodes: they mark device cut points,
    /// and absorbing work across one would move computation onto a
    /// different device than the placement assigned.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            OpKind::AllReduce | OpKind::AllGather { .. } | OpKind::Transfer
        )
    }

    /// Whether the op is a single primitive device operation rather than a
    /// decomposed chain (Table 2 "Single Operation").
    pub fn is_single_operation(&self) -> bool {
        // Fusion is the point: the composite runs as one kernel.
        if matches!(self, OpKind::Fused(_)) {
            return true;
        }
        !matches!(
            self,
            OpKind::NewGelu
                | OpKind::LlamaRmsNorm { .. }
                | OpKind::FrozenBatchNorm2d { .. }
                | OpKind::Nms { .. }
                | OpKind::RoiAlign { .. }
        ) && !self.is_nonlinear()
            || matches!(self, OpKind::Relu | OpKind::Relu6)
    }

    /// The fusible unary element-wise kernel this op computes, if any.
    ///
    /// This is the contract between the `ngb-opt` rewriter (which fuses
    /// exactly these ops into chains and GEMM epilogues) and the `ngb-exec`
    /// fused kernels (which replay them per element, bit-identically to the
    /// standalone kernels).
    pub fn pointwise(&self) -> Option<ngb_ops::fused::Pointwise> {
        use ngb_ops::fused::Pointwise as P;
        match self {
            OpKind::Relu => Some(P::Relu),
            OpKind::Relu6 => Some(P::Relu6),
            OpKind::Gelu => Some(P::Gelu),
            OpKind::GeluTanh => Some(P::GeluTanh),
            OpKind::NewGelu => Some(P::NewGelu),
            OpKind::Silu => Some(P::Silu),
            OpKind::Sigmoid => Some(P::Sigmoid),
            OpKind::Hardswish => Some(P::Hardswish),
            OpKind::Neg => Some(P::Neg),
            OpKind::AddScalar(s) => Some(P::AddScalar(*s)),
            OpKind::MulScalar(s) => Some(P::MulScalar(*s)),
            OpKind::DivScalar(s) => Some(P::DivScalar(*s)),
            OpKind::PowScalar(e) => Some(P::PowScalar(*e)),
            OpKind::Sqrt => Some(P::Sqrt),
            _ => None,
        }
    }

    /// Whether this op's executor consumes **arbitrary strided views**
    /// bit-identically to a materialized copy — the contract the `ngb-opt`
    /// contiguous-elision pass relies on when it removes a `Contiguous`
    /// node feeding this op.
    ///
    /// The list is conservative: an op is declared capable only when its
    /// `ngb-ops` kernel (or the `ngb_tensor` combinator it delegates to)
    /// walks strides directly. Ops whose kernels still materialize a dense
    /// copy internally (embedding, interpolation, RoI, reduction heads)
    /// stay `false` so eliding a producer never silently relocates the
    /// copy into the consumer.
    pub fn stride_capable(&self) -> bool {
        match self {
            // GEMM family: panels are packed straight from strided
            // operands (gather pack loops in `ngb_ops::gemm`).
            OpKind::Linear { .. }
            | OpKind::Conv1dGpt2 { .. }
            | OpKind::Conv2d { .. }
            | OpKind::Matmul
            | OpKind::Bmm => true,

            // Element-wise: `parallel::unary`/`Tensor::map`/`zip_map`
            // walk logical order over any layout.
            OpKind::Relu
            | OpKind::Relu6
            | OpKind::Gelu
            | OpKind::GeluTanh
            | OpKind::NewGelu
            | OpKind::Silu
            | OpKind::Sigmoid
            | OpKind::Hardswish
            | OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Neg
            | OpKind::AddScalar(_)
            | OpKind::MulScalar(_)
            | OpKind::DivScalar(_)
            | OpKind::PowScalar(_)
            | OpKind::Sqrt
            | OpKind::CausalMask => true,

            // Reductions over lanes via `reduce_dim`/`LaneMap`.
            OpKind::MeanDim { .. } | OpKind::Softmax { .. } | OpKind::LogSoftmax { .. } => true,

            // Normalization: strided-lane kernels (scratch-buffer gather).
            OpKind::LayerNorm { .. }
            | OpKind::RmsNorm { .. }
            | OpKind::LlamaRmsNorm { .. }
            | OpKind::BatchNorm2d { .. }
            | OpKind::FrozenBatchNorm2d { .. }
            | OpKind::GroupNorm { .. } => true,

            // Pooling: direct NCHW stride arithmetic.
            OpKind::MaxPool2d { .. }
            | OpKind::AvgPool2d { .. }
            | OpKind::AdaptiveAvgPool2d { .. } => true,

            // Collectives: `zip_map` accumulation, stride-aware `cat`,
            // and the transfer copy all walk logical order over any
            // layout; the shard GEMM packs panels like the full layer.
            OpKind::AllReduce
            | OpKind::AllGather { .. }
            | OpKind::Transfer
            | OpKind::LinearShard { .. } => true,

            // Layout ops are metadata rewrites or stride-aware copies
            // (`cat`/`roll` read through strides while writing dense
            // output). `Reshape`/`View` are capable only when the incoming
            // strides merge zero-copy — the elision pass checks that
            // statically with `reshape_strides` before trusting this bit.
            OpKind::Reshape { .. }
            | OpKind::View { .. }
            | OpKind::Permute { .. }
            | OpKind::Transpose { .. }
            | OpKind::Contiguous
            | OpKind::Expand { .. }
            | OpKind::Squeeze { .. }
            | OpKind::Unsqueeze { .. }
            | OpKind::Slice { .. }
            | OpKind::Cat { .. }
            | OpKind::Roll { .. } => true,

            // Resamplers and RoIAlign walk the spatial strides of their
            // feature map directly (base + iy*sh + ix*sw taps, like the
            // pooling kernels); box tensors go through `to_vec_f32`,
            // which reads any layout.
            OpKind::InterpolateNearest { .. }
            | OpKind::InterpolateBilinear { .. }
            | OpKind::RoiAlign { .. } => true,

            // Kernels that still materialize internally or gather through
            // integer indices: keep the copy explicit in the graph.
            OpKind::Input
            | OpKind::InputIds { .. }
            | OpKind::Embedding { .. }
            | OpKind::Nms { .. }
            | OpKind::BoxConvert
            | OpKind::Argmax { .. }
            | OpKind::TopK { .. } => false,

            // A fused pipeline consumes its inputs through its head stage.
            OpKind::Fused(f) => f
                .stages
                .first()
                .map(|s| s.op.stride_capable())
                .unwrap_or(false),
        }
    }

    /// Whether the op consumes exactly one tensor operand (Table 2
    /// "Single Operand").
    pub fn is_single_operand(&self) -> bool {
        if let OpKind::Fused(f) = self {
            return f.total_inputs() <= 1;
        }
        !matches!(
            self,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Matmul
                | OpKind::Bmm
                | OpKind::Cat { .. }
                | OpKind::Nms { .. }
                | OpKind::RoiAlign { .. }
                | OpKind::AllReduce
                | OpKind::AllGather { .. }
        )
    }
}

/// The `(start, len)` span of shard `part` of `parts` over `total`
/// elements: the first `total % parts` shards take one extra element, so
/// spans tile `0..total` exactly for any divisibility.
pub fn shard_span(total: usize, part: usize, parts: usize) -> (usize, usize) {
    let parts = parts.max(1);
    let part = part.min(parts - 1);
    let base = total / parts;
    let extra = total % parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    (start, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_classification_matches_paper() {
        assert!(OpKind::Linear {
            in_f: 1,
            out_f: 1,
            bias: true
        }
        .class()
        .is_gemm());
        assert!(OpKind::Bmm.class().is_gemm());
        assert!(OpKind::Matmul.class().is_gemm());
        assert!(OpKind::Conv2d {
            in_c: 3,
            out_c: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            bias: false
        }
        .class()
        .is_gemm());
        assert!(OpKind::Conv1dGpt2 { in_f: 1, out_f: 1 }.class().is_gemm());
    }

    #[test]
    fn non_gemm_groups() {
        assert_eq!(
            OpKind::Softmax { dim: 1 }.class().group(),
            Some(NonGemmGroup::LogitComputation)
        );
        assert_eq!(
            OpKind::NewGelu.class().group(),
            Some(NonGemmGroup::Activation)
        );
        assert_eq!(
            OpKind::FrozenBatchNorm2d { c: 4 }.class().group(),
            Some(NonGemmGroup::Normalization)
        );
        assert_eq!(
            OpKind::Contiguous.class().group(),
            Some(NonGemmGroup::Memory)
        );
        assert_eq!(
            OpKind::Nms {
                iou_threshold: 0.5,
                nominal_keep: 100
            }
            .class()
            .group(),
            Some(NonGemmGroup::RoiSelection)
        );
        assert_eq!(
            OpKind::CausalMask.class().group(),
            Some(NonGemmGroup::Arithmetic)
        );
    }

    #[test]
    fn param_counts() {
        assert_eq!(
            OpKind::Linear {
                in_f: 4,
                out_f: 8,
                bias: true
            }
            .param_count(),
            40
        );
        assert_eq!(
            OpKind::Linear {
                in_f: 4,
                out_f: 8,
                bias: false
            }
            .param_count(),
            32
        );
        assert_eq!(OpKind::LayerNorm { dim: 16 }.param_count(), 32);
        assert_eq!(OpKind::Relu.param_count(), 0);
        assert_eq!(OpKind::Embedding { vocab: 10, dim: 4 }.param_count(), 40);
        assert_eq!(
            OpKind::Conv2d {
                in_c: 4,
                out_c: 8,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                bias: true
            }
            .param_count(),
            4 * 8 * 9 + 8
        );
    }

    #[test]
    fn dynamic_flags() {
        assert!(OpKind::Nms {
            iou_threshold: 0.5,
            nominal_keep: 10
        }
        .is_dynamic());
        assert!(!OpKind::Softmax { dim: 0 }.is_dynamic());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(OpKind::NewGelu.name(), "new_gelu");
        assert_eq!(OpKind::Cat { dim: 0 }.name(), "cat");
    }

    #[test]
    fn fused_metadata_follows_stages() {
        let gemm_epilogue = OpKind::Fused(FusedOp {
            kind: FusedKind::GemmEpilogue,
            stages: vec![
                FusedStage {
                    op: OpKind::Linear {
                        in_f: 4,
                        out_f: 8,
                        bias: true,
                    },
                    seed_id: 3,
                    extra_inputs: 1,
                },
                FusedStage {
                    op: OpKind::Gelu,
                    seed_id: 4,
                    extra_inputs: 0,
                },
            ],
        });
        assert_eq!(gemm_epilogue.name(), "fused_gemm_epilogue");
        assert!(gemm_epilogue.class().is_gemm());
        assert_eq!(gemm_epilogue.param_count(), 40);
        assert!(gemm_epilogue.is_nonlinear());
        assert!(!gemm_epilogue.is_dynamic());
        assert!(gemm_epilogue.is_single_operation());
        assert!(gemm_epilogue.is_single_operand());
        if let OpKind::Fused(f) = &gemm_epilogue {
            assert_eq!(f.total_inputs(), 1);
        }

        let chain = OpKind::Fused(FusedOp {
            kind: FusedKind::ElementwiseChain,
            stages: vec![
                FusedStage {
                    op: OpKind::MulScalar(0.5),
                    seed_id: 0,
                    extra_inputs: 1,
                },
                FusedStage {
                    op: OpKind::Sqrt,
                    seed_id: 1,
                    extra_inputs: 0,
                },
            ],
        });
        assert_eq!(
            chain.class().group(),
            Some(NonGemmGroup::Arithmetic),
            "element-wise chains keep their head's class"
        );
    }

    #[test]
    fn stride_capability_is_conservative() {
        assert!(OpKind::Bmm.stride_capable());
        assert!(OpKind::Gelu.stride_capable());
        assert!(OpKind::Softmax { dim: 3 }.stride_capable());
        assert!(OpKind::LayerNorm { dim: 8 }.stride_capable());
        assert!(OpKind::MaxPool2d {
            kernel: 2,
            stride: 2,
            padding: 0
        }
        .stride_capable());
        // detection kernels walk feature-map strides directly
        assert!(OpKind::InterpolateBilinear { oh: 4, ow: 4 }.stride_capable());
        assert!(OpKind::RoiAlign {
            out: 7,
            spatial_scale: 1.0
        }
        .stride_capable());
        // internal materializers keep their explicit Contiguous producers
        assert!(!OpKind::Embedding { vocab: 8, dim: 4 }.stride_capable());
        assert!(!OpKind::TopK { k: 5 }.stride_capable());
    }

    #[test]
    fn group_labels_cover_all() {
        for g in NonGemmGroup::all() {
            assert!(!g.label().is_empty());
        }
        assert_eq!(NonGemmGroup::all().len(), 11);
    }

    #[test]
    fn shard_span_tiles_total_exactly() {
        for &(total, parts) in &[(7usize, 3usize), (8, 4), (1, 2), (5, 5), (0, 3), (16, 1)] {
            let mut next = 0;
            for part in 0..parts {
                let (start, len) = shard_span(total, part, parts);
                assert_eq!(start, next, "{total}/{parts} part {part}");
                next = start + len;
            }
            assert_eq!(next, total, "spans must cover 0..{total}");
        }
    }

    #[test]
    fn collectives_are_classified_and_guarded() {
        for op in [
            OpKind::AllReduce,
            OpKind::AllGather { dim: 1 },
            OpKind::Transfer,
        ] {
            assert!(op.is_collective(), "{} is a collective", op.name());
            assert_eq!(op.class(), OpClass::NonGemm(NonGemmGroup::Collective));
        }
        let shard = OpKind::LinearShard {
            in_f: 8,
            out_f: 6,
            bias: true,
            part: 0,
            parts: 2,
            row_split: false,
        };
        assert!(!shard.is_collective());
        assert_eq!(shard.class(), OpClass::Gemm);
        // column split: part 0 of 2 over out_f=6 owns 3 rows of [6,8] + 3 bias
        assert_eq!(shard.param_count(), 3 * 8 + 3);
    }
}
