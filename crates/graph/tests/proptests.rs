//! Property-based tests over randomly assembled operator graphs: shape
//! inference must agree with real execution, costs must be sane, and the
//! builder must preserve validity.

use ngb_graph::{GraphBuilder, Interpreter, OpKind};
use proptest::prelude::*;

/// A random unary, shape-preserving operator.
fn unary_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Relu),
        Just(OpKind::Relu6),
        Just(OpKind::Gelu),
        Just(OpKind::GeluTanh),
        Just(OpKind::NewGelu),
        Just(OpKind::Silu),
        Just(OpKind::Sigmoid),
        Just(OpKind::Hardswish),
        Just(OpKind::Neg),
        Just(OpKind::Sqrt),
        (-2.0f32..2.0).prop_map(OpKind::AddScalar),
        (0.1f32..3.0).prop_map(OpKind::MulScalar),
        (0.5f32..4.0).prop_map(OpKind::DivScalar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chain of unary ops built through the GraphBuilder executes, and
    /// every static shape matches the actual tensor shape.
    #[test]
    fn random_unary_chains_execute_with_correct_shapes(
        ops in prop::collection::vec(unary_op(), 1..8),
        rows in 1usize..4,
        cols in 1usize..12,
    ) {
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.input(&[rows, cols]);
        for (i, op) in ops.iter().enumerate() {
            cur = b.push(op.clone(), &[cur], &format!("op{i}")).unwrap();
        }
        let g = b.finish();
        prop_assert!(g.validate().is_ok());
        let trace = Interpreter::new(1).run(&g).unwrap();
        for (node, timing) in g.iter().zip(&trace.timings) {
            prop_assert_eq!(&node.out_shape, &timing.out_shape, "node {}", &node.name);
        }
        // sqrt of negatives produces NaN — restrict the finite check to
        // graphs without sqrt
        if !ops.contains(&OpKind::Sqrt) {
            let out = &trace.outputs[0].1;
            prop_assert!(out.to_vec_f32().unwrap().iter().all(|v| v.is_finite()));
        }
    }

    /// Every node's cost is non-negative and finite, and GEMM ops always
    /// carry FLOPs.
    #[test]
    fn costs_are_sane_for_random_mlps(
        widths in prop::collection::vec(1usize..32, 2..6),
        batch in 1usize..4,
    ) {
        let mut b = GraphBuilder::new("mlp");
        let mut cur = b.input(&[batch, widths[0]]);
        for w in widths.windows(2) {
            cur = b
                .push(OpKind::Linear { in_f: w[0], out_f: w[1], bias: true }, &[cur], "fc")
                .unwrap();
            cur = b.push(OpKind::Gelu, &[cur], "act").unwrap();
        }
        let g = b.finish();
        for node in g.iter() {
            let c = g.node_cost(node.id);
            prop_assert!(c.flops.is_finite() && c.flops >= 0.0);
            prop_assert!(c.bytes_read >= 0.0 && c.bytes_written >= 0.0);
            if node.class().is_gemm() {
                prop_assert!(c.flops > 0.0, "GEMM {} has no flops", node.name);
            }
        }
        prop_assert!(g.peak_activation_bytes() > 0);
    }

    /// Reshape/permute round trips through the graph builder preserve the
    /// executed values.
    #[test]
    fn layout_roundtrip_through_graph(
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
    ) {
        let mut b = GraphBuilder::new("layout");
        let x = b.input(&[d0, d1, d2]);
        let p = b.push(OpKind::Permute { perm: vec![2, 0, 1] }, &[x], "p").unwrap();
        let c = b.push(OpKind::Contiguous, &[p], "c").unwrap();
        let back = b.push(OpKind::Permute { perm: vec![1, 2, 0] }, &[c], "back").unwrap();
        let r = b.push(OpKind::Reshape { shape: vec![d0 * d1 * d2] }, &[back], "flat").unwrap();
        let _ = r;
        let g = b.finish();
        let t = Interpreter::new(2).run(&g).unwrap();
        // the round trip equals the flattened input; re-generate the input
        // deterministically through a second run
        let t2 = Interpreter::new(2).run(&g).unwrap();
        prop_assert_eq!(
            t.outputs[0].1.to_vec_f32().unwrap(),
            t2.outputs[0].1.to_vec_f32().unwrap()
        );
        prop_assert_eq!(t.outputs[0].1.shape(), &[d0 * d1 * d2]);
    }

    /// Cost of a binary op grows with the broadcast output size, never the
    /// smaller operand.
    #[test]
    fn binary_cost_scales_with_output(n in 1usize..64) {
        let mut b = GraphBuilder::new("bin");
        let big = b.input(&[n, 16]);
        let small = b.input(&[16]);
        let add = b.push(OpKind::Add, &[big, small], "add").unwrap();
        let g = b.finish();
        let c = g.node_cost(add);
        prop_assert!((c.bytes_written - (n * 16 * 4) as f64).abs() < 1.0);
    }
}
