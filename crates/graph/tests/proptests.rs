//! Property-based tests over randomly assembled operator graphs: costs
//! must be sane and the builder must preserve validity. (Execution-level
//! properties live in `ngb-exec`'s proptests.)

use ngb_graph::{GraphBuilder, OpKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every node's cost is non-negative and finite, and GEMM ops always
    /// carry FLOPs.
    #[test]
    fn costs_are_sane_for_random_mlps(
        widths in prop::collection::vec(1usize..32, 2..6),
        batch in 1usize..4,
    ) {
        let mut b = GraphBuilder::new("mlp");
        let mut cur = b.input(&[batch, widths[0]]);
        for w in widths.windows(2) {
            cur = b
                .push(OpKind::Linear { in_f: w[0], out_f: w[1], bias: true }, &[cur], "fc")
                .unwrap();
            cur = b.push(OpKind::Gelu, &[cur], "act").unwrap();
        }
        let g = b.finish();
        for node in g.iter() {
            let c = g.node_cost(node.id);
            prop_assert!(c.flops.is_finite() && c.flops >= 0.0);
            prop_assert!(c.bytes_read >= 0.0 && c.bytes_written >= 0.0);
            if node.class().is_gemm() {
                prop_assert!(c.flops > 0.0, "GEMM {} has no flops", node.name);
            }
        }
        prop_assert!(g.peak_activation_bytes() > 0);
    }

    /// Cost of a binary op grows with the broadcast output size, never the
    /// smaller operand.
    #[test]
    fn binary_cost_scales_with_output(n in 1usize..64) {
        let mut b = GraphBuilder::new("bin");
        let big = b.input(&[n, 16]);
        let small = b.input(&[16]);
        let add = b.push(OpKind::Add, &[big, small], "add").unwrap();
        let g = b.finish();
        let c = g.node_cost(add);
        prop_assert!((c.bytes_written - (n * 16 * 4) as f64).abs() < 1.0);
    }
}
