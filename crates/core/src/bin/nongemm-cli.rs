//! `nongemm-cli` — command-line front end of the benchmark harness.
//!
//! Seven subcommands (run `nongemm-cli --help` for the full flag list):
//!
//! * `run` (default) — profile the selected models end-to-end, measured,
//!   or through the microbench flow;
//! * `generate` — greedy autoregressive decode with the KV cache:
//!   prefill a synthetic prompt, then generate `--max-new-tokens`
//!   tokens one step at a time, optionally with `--quantize int8`
//!   weight-quantized GEMMs; prints tokens/sec and cache hit rate;
//! * `verify` — run the `ngb-analyze` static analyzer; exits 0 when
//!   every report is clean, 1 when any deny-level diagnostic fires;
//! * `sanitize` — run the `ngb-sanitize` schedule/memory hazard verifier
//!   and (unless `--static-only`) execute each clean graph under the
//!   shadow-memory sanitizer; exits 0 when every report is hazard-free;
//! * `serve` — run the `ngb-serve` inference service: line-delimited
//!   JSON over TCP, dynamic batching with admission control; blocks
//!   until a client sends the `shutdown` wire op, then drains and
//!   prints the final counters (pair with the `loadgen` binary);
//! * `shard` — partition each model across a simulated multi-device
//!   roster (`--devices 2xgpu`, `gpu+cpu`, …) with the pipeline- or
//!   tensor-parallel strategy, execute the plan on per-device threads
//!   with real collective/transfer kernels, verify bit-identity against
//!   single-device execution, and report modeled vs executed speedup,
//!   bubble fraction, and transfer bytes;
//! * `ci` — the perf-regression gate: `--check` diffs the current tree
//!   against the committed golden baselines under `baselines/` and exits
//!   non-zero on any divergence, `--update` regenerates them (plus the
//!   repo-root `BENCH_BASELINE.json` seed) and summarizes what moved.
//!
//! Shared conventions: `--opt-level` / `NGB_OPT` select the `ngb-opt`
//! graph-rewrite level, `--threads` / `NGB_THREADS` the execution
//! parallelism; usage errors exit 2 with a one-line usage string on
//! stderr; `--help` prints the full help on stdout and exits 0. The
//! regression gate additionally honors `NGB_NO_WALLCLOCK` (skip the
//! measured smoke channel) and `NGB_WALLCLOCK_FACTOR` (noise headroom).

use std::process::ExitCode;

use nongemm::profiler::report::{csv_header, PerformanceReport};
use nongemm::profiler::trace::to_chrome_trace;
use nongemm::regress;
use nongemm::{BenchConfig, Flow, ModelId, NonGemmBench, OptLevel, Platform, Scale};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Csv,
    Json,
}

#[derive(Debug)]
struct Args {
    models: Vec<String>,
    platform: Platform,
    flow: Flow,
    batch: usize,
    cpu_only: bool,
    tiny: bool,
    measured: bool,
    microbench: bool,
    threads: usize,
    opt_level: Option<OptLevel>,
    intra_op: Option<bool>,
    sanitize: Option<bool>,
    format: Format,
    trace: Option<String>,
}

#[derive(Debug)]
struct VerifyArgs {
    models: Vec<String>,
    batch: usize,
    tiny: bool,
    threads: usize,
    opt_level: Option<OptLevel>,
    intra_op: Option<bool>,
    format: Format,
    all: bool,
}

#[derive(Debug)]
struct SanitizeArgs {
    models: Vec<String>,
    batch: usize,
    tiny: bool,
    threads: usize,
    opt_level: Option<OptLevel>,
    intra_op: Option<bool>,
    static_only: bool,
    format: Format,
}

#[derive(Debug)]
struct GenerateArgs {
    models: Vec<String>,
    tiny: bool,
    prompt_len: usize,
    max_new: usize,
    quantize: Option<nongemm::ops::Quant>,
    threads: usize,
}

#[derive(Debug)]
struct ShardArgs {
    models: Vec<String>,
    devices: Option<String>,
    strategy: nongemm::shard::Strategy,
    microbatches: usize,
    batch: usize,
    tiny: bool,
    opt_level: Option<OptLevel>,
    format: Format,
}

#[derive(Debug)]
struct CiArgs {
    models: Vec<String>,
    dir: String,
    update: bool,
    bench: String,
    report: Option<String>,
    wallclock_iters: usize,
    no_wallclock: bool,
    format: Format,
}

const HELP: &str = "\
nongemm-cli — NonGEMM Bench profiling harness

USAGE:
  nongemm-cli [run] [OPTIONS]     profile models (default subcommand)
  nongemm-cli generate [OPTIONS]  greedy autoregressive decode (KV cache)
  nongemm-cli verify [OPTIONS]    static graph analysis + lints
  nongemm-cli sanitize [OPTIONS]  schedule/memory hazard verifier + sanitizer
  nongemm-cli serve [OPTIONS]     inference service with dynamic batching
  nongemm-cli shard [OPTIONS]     multi-device sharding: partition, place, execute
  nongemm-cli ci [OPTIONS]        perf-regression gate over golden baselines
  nongemm-cli help | --help | -h  print this help

RUN OPTIONS:
  --model <alias>       model alias (repeatable; default: all 18)
  --platform <p>        mobile | workstation | datacenter (default: datacenter)
  --flow <f>            eager | torchscript | dynamo | ort (default: eager)
  --batch <n>           batch size (default: 1)
  --cpu-only            drop the GPU from the platform
  --tiny                use the executable tiny presets
  --measured            execute on the host instead of the analytic models
  --microbench          run the microbench flow instead of end-to-end
  --threads <n>         worker threads for --measured (default: $NGB_THREADS or 1)
  --opt-level <0|1|2>   graph-rewrite level (default: $NGB_OPT or 0)
  --intra-op <on|off>   intra-op data parallelism for --measured
                        (default: $NGB_INTRAOP or on)
  --sanitize            run --measured under the shadow-memory sanitizer
                        (default: $NGB_SANITIZE or off)
  --format <fmt>        text | csv | json (default: text)
  --trace <path>        also write a Chrome trace JSON per model

GENERATE OPTIONS:
  --model <alias>       autoregressive LM alias (repeatable; default:
                        gpt2 and llama2 — other aliases are rejected)
  --tiny                use the executable tiny presets
  --prompt-len <n>      synthetic prompt length (default: 4)
  --max-new-tokens <n>  tokens to generate greedily (default: 16)
  --quantize <q>        none | int8 weight-quantized GEMMs
                        (default: $NGB_QUANT or none)
  --threads <n>         worker threads (default: $NGB_THREADS or 1)

VERIFY OPTIONS:
  --model <alias>       model alias (repeatable; default: all 18)
  --batch <n>           batch size (default: 1)
  --tiny                use the executable tiny presets
  --threads <n>         analyze models concurrently (default: $NGB_THREADS or 1)
  --opt-level <0|1|2>   analyze the rewritten graphs (default: $NGB_OPT or 0)
  --intra-op <on|off>   accepted for parity with run (analysis is static)
  --format <fmt>        text | json (default: text)
  --all                 include allow-level findings in text output

SANITIZE OPTIONS:
  --model <alias>       model alias (repeatable; default: all 18)
  --batch <n>           batch size (default: 1)
  --tiny                use the executable tiny presets
  --threads <n>         engine for the sanitized execution pass
                        (default: $NGB_THREADS or 1)
  --opt-level <0|1|2>   sanitize the rewritten graphs (default: $NGB_OPT or 0)
  --intra-op <on|off>   intra-op parallelism for the execution pass
  --static-only         skip the shadow-memory execution pass
  --format <fmt>        text | json (default: text)

SERVE OPTIONS:
  --addr <host:port>    listen address (default: $NGB_SERVE_ADDR or
                        127.0.0.1:0 — port 0 picks an ephemeral port,
                        printed on startup)
  --max-batch <n>       largest dynamic batch (default: $NGB_SERVE_MAX_BATCH
                        or 8; batch-opaque models always execute at 1)
  --batch-wait-us <n>   how long a pending request waits for batch
                        companions (default: $NGB_SERVE_BATCH_WAIT_US or 2000)
  --queue-cap <n>       per-model admission queue bound; 0 rejects all
                        (default: $NGB_SERVE_QUEUE_CAP or 64)
  --threads <n>         executor worker threads (default: $NGB_THREADS or 1)
  --opt-level <0|1|2>   graph-rewrite level for served graphs
                        (default: $NGB_OPT or 0)
  --intra-op <on|off>   intra-op data parallelism (default: $NGB_INTRAOP or on)
  --tiny                serve the executable tiny presets

SHARD OPTIONS:
  --model <alias>       model alias (repeatable; default: all 18)
  --devices <spec>      device roster: kind names cpu|gpu|npu joined by '+',
                        with optional <n>x repeat — 2xgpu, gpu+cpu, 4xgpu,
                        2xgpu+npu (default: $NGB_DEVICES or 2xgpu)
  --strategy <s>        pipeline | tensor (default: pipeline)
  --microbatches <n>    pipeline microbatches / replays (default: 4)
  --batch <n>           batch size (default: 1)
  --tiny                use the executable tiny presets (execution always
                        runs the real kernels; full scale is slow)
  --opt-level <0|1|2>   rewrite level before partitioning (default: $NGB_OPT
                        or 0; tensor splits apply to primitive Linear nodes)
  --format <fmt>        text | json (default: text)

CI OPTIONS:
  --check               diff current state against baselines (default)
  --update              regenerate baselines + BENCH_BASELINE.json
  --model <alias>       gate only these models (repeatable; default: all 18)
  --dir <path>          baseline directory (default: baselines)
  --bench <path>        bench seed path (default: BENCH_BASELINE.json)
  --report <path>       also write the JSON diff report here
  --wallclock-iters <n> wall-clock samples per model (default: 5)
  --no-wallclock        skip the measured smoke channel (or NGB_NO_WALLCLOCK=1)
  --format <fmt>        text | json (default: text)

ENVIRONMENT:
  NGB_THREADS / NGB_OPT      defaults for --threads / --opt-level
  NGB_INTRAOP                default for --intra-op (0/off/false disable)
  NGB_SANITIZE               default for --sanitize (0/off/false disable)
  NGB_QUANT                  default for generate --quantize (none | int8)
  NGB_INTRAOP_MIN_ELEMS      min elements before a kernel splits into
                             intra-op chunks (work-budget heuristic)
  NGB_SERVE_ADDR             default for serve --addr
  NGB_SERVE_MAX_BATCH        default for serve --max-batch
  NGB_SERVE_BATCH_WAIT_US    default for serve --batch-wait-us
  NGB_SERVE_QUEUE_CAP        default for serve --queue-cap
  NGB_DEVICES                default for shard --devices (e.g. 2xgpu, gpu+cpu)

EXIT CODES:
  0  success / clean    1  failure or regression    2  usage error
";

fn print_help() -> ExitCode {
    print!("{HELP}");
    ExitCode::SUCCESS
}

fn usage() -> ! {
    eprintln!(
        "usage: nongemm-cli [run|generate|verify|sanitize|serve|shard|ci] [OPTIONS]\n\
         \x20      (see `nongemm-cli --help` for the full option list)"
    );
    std::process::exit(2);
}

/// Pops the next value for a `--flag <value>` option or dies with usage.
fn take_value(it: &mut std::slice::Iter<'_, String>, name: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("{name} requires a value");
        usage()
    })
}

fn parse_positive(v: &str, name: &str) -> usize {
    match v.parse() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("{name} requires a positive integer");
            usage()
        }
    }
}

fn parse_opt_level(v: &str) -> OptLevel {
    OptLevel::parse(v).unwrap_or_else(|| {
        eprintln!("--opt-level requires 0, 1, or 2");
        usage()
    })
}

fn parse_intra_op(v: &str) -> bool {
    match v {
        "on" => true,
        "off" => false,
        other => {
            eprintln!("--intra-op requires on or off, not '{other}'");
            usage()
        }
    }
}

fn parse_run_args(argv: &[String]) -> Args {
    let mut args = Args {
        models: Vec::new(),
        platform: Platform::data_center(),
        flow: Flow::Eager,
        batch: 1,
        cpu_only: false,
        tiny: false,
        measured: false,
        microbench: false,
        threads: 0,
        opt_level: None,
        intra_op: None,
        sanitize: None,
        format: Format::Text,
        trace: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--platform" => {
                args.platform = match take_value(&mut it, "--platform").as_str() {
                    "mobile" => Platform::mobile(),
                    "workstation" => Platform::workstation(),
                    "datacenter" | "data-center" => Platform::data_center(),
                    other => {
                        eprintln!("unknown platform '{other}'");
                        usage()
                    }
                }
            }
            "--flow" => {
                args.flow = match take_value(&mut it, "--flow").as_str() {
                    "eager" => Flow::Eager,
                    "torchscript" => Flow::TorchScript,
                    "dynamo" => Flow::Dynamo,
                    "ort" => Flow::Ort,
                    other => {
                        eprintln!("unknown flow '{other}'");
                        usage()
                    }
                }
            }
            "--batch" => args.batch = parse_positive(&take_value(&mut it, "--batch"), "--batch"),
            "--cpu-only" => args.cpu_only = true,
            "--tiny" => args.tiny = true,
            "--measured" => args.measured = true,
            "--microbench" => args.microbench = true,
            "--threads" => {
                args.threads = parse_positive(&take_value(&mut it, "--threads"), "--threads")
            }
            "--opt-level" => {
                args.opt_level = Some(parse_opt_level(&take_value(&mut it, "--opt-level")))
            }
            "--intra-op" => {
                args.intra_op = Some(parse_intra_op(&take_value(&mut it, "--intra-op")))
            }
            "--sanitize" => args.sanitize = Some(true),
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    other => {
                        eprintln!("unknown format '{other}'");
                        usage()
                    }
                }
            }
            "--trace" => {
                let v = take_value(&mut it, "--trace");
                args.trace = Some(v);
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    args
}

fn parse_verify_args(argv: &[String]) -> VerifyArgs {
    let mut args = VerifyArgs {
        models: Vec::new(),
        batch: 1,
        tiny: false,
        threads: 0,
        opt_level: None,
        intra_op: None,
        format: Format::Text,
        all: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--batch" => args.batch = parse_positive(&take_value(&mut it, "--batch"), "--batch"),
            "--tiny" => args.tiny = true,
            "--all" => args.all = true,
            "--threads" => {
                args.threads = parse_positive(&take_value(&mut it, "--threads"), "--threads")
            }
            "--opt-level" => {
                args.opt_level = Some(parse_opt_level(&take_value(&mut it, "--opt-level")))
            }
            "--intra-op" => {
                args.intra_op = Some(parse_intra_op(&take_value(&mut it, "--intra-op")))
            }
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("verify supports --format text|json, not '{other}'");
                        usage()
                    }
                }
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    args
}

fn parse_sanitize_args(argv: &[String]) -> SanitizeArgs {
    let mut args = SanitizeArgs {
        models: Vec::new(),
        batch: 1,
        tiny: false,
        threads: 0,
        opt_level: None,
        intra_op: None,
        static_only: false,
        format: Format::Text,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--batch" => args.batch = parse_positive(&take_value(&mut it, "--batch"), "--batch"),
            "--tiny" => args.tiny = true,
            "--static-only" => args.static_only = true,
            "--threads" => {
                args.threads = parse_positive(&take_value(&mut it, "--threads"), "--threads")
            }
            "--opt-level" => {
                args.opt_level = Some(parse_opt_level(&take_value(&mut it, "--opt-level")))
            }
            "--intra-op" => {
                args.intra_op = Some(parse_intra_op(&take_value(&mut it, "--intra-op")))
            }
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("sanitize supports --format text|json, not '{other}'");
                        usage()
                    }
                }
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    args
}

/// Builds a [`nongemm::serve::ServeConfig`] from the command line on top
/// of the `NGB_SERVE_*` environment defaults.
fn parse_serve_args(argv: &[String]) -> nongemm::serve::ServeConfig {
    let mut config = nongemm::serve::ServeConfig::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = take_value(&mut it, "--addr"),
            "--max-batch" => {
                config.max_batch =
                    parse_positive(&take_value(&mut it, "--max-batch"), "--max-batch")
            }
            "--batch-wait-us" => {
                let v = take_value(&mut it, "--batch-wait-us");
                config.batch_wait = match v.parse::<u64>() {
                    Ok(us) => std::time::Duration::from_micros(us),
                    Err(_) => {
                        eprintln!("--batch-wait-us requires a non-negative integer");
                        usage()
                    }
                }
            }
            // 0 is a legal cap (reject everything) — unlike the other
            // numeric flags this one is a bound, not a count
            "--queue-cap" => {
                let v = take_value(&mut it, "--queue-cap");
                config.queue_cap = match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--queue-cap requires a non-negative integer");
                        usage()
                    }
                }
            }
            "--threads" => {
                config.threads = parse_positive(&take_value(&mut it, "--threads"), "--threads")
            }
            "--opt-level" => {
                config.opt_level = parse_opt_level(&take_value(&mut it, "--opt-level"))
            }
            "--intra-op" => {
                config.intra_op = Some(parse_intra_op(&take_value(&mut it, "--intra-op")))
            }
            "--tiny" => config.scale = Scale::Tiny,
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    config
}

fn parse_ci_args(argv: &[String]) -> CiArgs {
    let mut args = CiArgs {
        models: Vec::new(),
        dir: "baselines".to_string(),
        update: false,
        bench: "BENCH_BASELINE.json".to_string(),
        report: None,
        wallclock_iters: regress::DEFAULT_WALLCLOCK_ITERS,
        no_wallclock: false,
        format: Format::Text,
    };
    let mut explicit_check = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--dir" => args.dir = take_value(&mut it, "--dir"),
            "--check" => explicit_check = true,
            "--update" => args.update = true,
            "--bench" => args.bench = take_value(&mut it, "--bench"),
            "--report" => {
                let v = take_value(&mut it, "--report");
                args.report = Some(v);
            }
            "--wallclock-iters" => {
                args.wallclock_iters = parse_positive(
                    &take_value(&mut it, "--wallclock-iters"),
                    "--wallclock-iters",
                )
            }
            "--no-wallclock" => args.no_wallclock = true,
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("ci supports --format text|json, not '{other}'");
                        usage()
                    }
                }
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    if args.update && explicit_check {
        eprintln!("--check and --update are mutually exclusive");
        usage()
    }
    args
}

fn parse_shard_args(argv: &[String]) -> ShardArgs {
    let mut args = ShardArgs {
        models: Vec::new(),
        devices: None,
        strategy: nongemm::shard::Strategy::Pipeline,
        microbatches: nongemm::shard::DEFAULT_MICROBATCHES,
        batch: 1,
        tiny: false,
        opt_level: None,
        format: Format::Text,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--devices" => args.devices = Some(take_value(&mut it, "--devices")),
            "--strategy" => {
                let v = take_value(&mut it, "--strategy");
                args.strategy = nongemm::shard::Strategy::parse(&v).unwrap_or_else(|| {
                    eprintln!("--strategy requires pipeline or tensor, not '{v}'");
                    usage()
                })
            }
            "--microbatches" => {
                args.microbatches =
                    parse_positive(&take_value(&mut it, "--microbatches"), "--microbatches")
            }
            "--batch" => args.batch = parse_positive(&take_value(&mut it, "--batch"), "--batch"),
            "--tiny" => args.tiny = true,
            "--opt-level" => {
                args.opt_level = Some(parse_opt_level(&take_value(&mut it, "--opt-level")))
            }
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("shard supports --format text|json, not '{other}'");
                        usage()
                    }
                }
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    args
}

fn run_shard(argv: &[String]) -> ExitCode {
    use nongemm::shard::{self, DeviceSpec, ShardOptions};
    let args = parse_shard_args(argv);
    let spec = match &args.devices {
        Some(s) => DeviceSpec::parse(s).unwrap_or_else(|| {
            eprintln!("--devices '{s}' is not a valid roster (try 2xgpu or gpu+cpu)");
            usage()
        }),
        None => shard::env_devices("2xgpu"),
    };
    let devices = spec.roster();
    let bench = NonGemmBench::new(BenchConfig {
        models: args.models.clone(),
        batch: args.batch,
        scale: if args.tiny { Scale::Tiny } else { Scale::Full },
        opt_level: args.opt_level,
        ..BenchConfig::default()
    });
    let graphs = match bench.build_graphs() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("shard failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if graphs.is_empty() {
        eprintln!("no models matched the selection");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for g in &graphs {
        let outcome = (|| -> Result<String, String> {
            let plan = shard::partition(g, &devices, args.strategy, &ShardOptions::default())
                .map_err(|e| e.to_string())?;
            let est = plan.modeled(args.microbatches);
            let run =
                shard::execute(&plan, 0x5eed, args.microbatches).map_err(|e| e.to_string())?;
            let reference = nongemm::Interpreter::default()
                .run(g)
                .map_err(|e| e.to_string())?;
            let identical = run.outputs.len() == reference.outputs.len()
                && run
                    .outputs
                    .iter()
                    .zip(&reference.outputs)
                    .all(|((si, sv), (ri, rv))| {
                        let a = sv.to_vec_f32().unwrap_or_default();
                        let b = rv.to_vec_f32().unwrap_or_default();
                        si == ri
                            && a.len() == b.len()
                            && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits())
                    });
            if !identical {
                return Err("sharded outputs diverge from single-device execution".into());
            }
            Ok(match args.format {
                Format::Json => format!(
                    "{{\"model\":\"{}\",\"devices\":\"{}\",\"strategy\":\"{}\",\
                     \"microbatches\":{},\"splits\":{},\"bit_identical\":true,\
                     \"modeled_speedup\":{:.3},\"modeled_bubble\":{:.4},\
                     \"executed_wall_s\":{:.6},\"executed_bubble\":{:.4},\
                     \"transfer_bytes\":{}}}",
                    g.name,
                    spec.label(),
                    args.strategy,
                    run.microbatches,
                    plan.splits,
                    est.speedup,
                    est.bubble_fraction,
                    run.wall_s,
                    run.bubble_fraction,
                    run.transfer_bytes,
                ),
                _ => format!(
                    "{:<14} {}  {}  mb={}  splits={}  bit-identical  \
                     modeled speedup {:.2}x (bubble {:.0}%)  executed wall {:.1} ms \
                     (bubble {:.0}%)  moved {} B",
                    g.name,
                    spec.label(),
                    args.strategy,
                    run.microbatches,
                    plan.splits,
                    est.speedup,
                    est.bubble_fraction * 100.0,
                    run.wall_s * 1e3,
                    run.bubble_fraction * 100.0,
                    run.transfer_bytes,
                ),
            })
        })();
        match outcome {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("{}: {e}", g.name);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("shard: {failures} model(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_generate_args(argv: &[String]) -> GenerateArgs {
    let mut args = GenerateArgs {
        models: Vec::new(),
        tiny: false,
        prompt_len: 4,
        max_new: 16,
        quantize: None,
        threads: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--tiny" => args.tiny = true,
            "--prompt-len" => {
                args.prompt_len =
                    parse_positive(&take_value(&mut it, "--prompt-len"), "--prompt-len")
            }
            "--max-new-tokens" => {
                args.max_new =
                    parse_positive(&take_value(&mut it, "--max-new-tokens"), "--max-new-tokens")
            }
            "--quantize" => {
                let v = take_value(&mut it, "--quantize");
                args.quantize = match nongemm::ops::Quant::parse(&v) {
                    Some(q) => Some(q),
                    None => {
                        eprintln!("--quantize requires none or int8, not '{v}'");
                        usage()
                    }
                }
            }
            "--threads" => {
                args.threads = parse_positive(&take_value(&mut it, "--threads"), "--threads")
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    if args.models.is_empty() {
        args.models = vec!["gpt2".to_string(), "llama2".to_string()];
    }
    args
}

fn run_generate(argv: &[String]) -> ExitCode {
    use nongemm::exec::Engine;
    use nongemm::runtime::{greedy_decode, synth_prompt, DecodeSession};
    use nongemm::Interpreter;

    let args = parse_generate_args(argv);
    let scale = if args.tiny { Scale::Tiny } else { Scale::Full };
    let threads = if args.threads == 0 {
        nongemm::exec::env_threads(1)
    } else {
        args.threads
    };
    let mut interp = Interpreter::default();
    if threads > 1 {
        interp = interp.engine(Engine::Parallel(threads));
    }
    if let Some(q) = args.quantize {
        interp = interp.quantize(q);
    }
    let total = args.prompt_len + args.max_new;

    for alias in &args.models {
        let Some(id) = ModelId::all()
            .iter()
            .copied()
            .find(|m| m.spec().alias == *alias)
        else {
            eprintln!("unknown model '{alias}'");
            return ExitCode::FAILURE;
        };
        let Some(bundle) = nongemm::models::decode_bundle(id, scale, 1, total) else {
            eprintln!("{alias} is not an autoregressive LM; generate supports the GPT-2 family and llama2");
            return ExitCode::FAILURE;
        };
        let result = bundle.map_err(|e| e.to_string()).and_then(|bundle| {
            let prompt = synth_prompt(interp.seed(), &bundle.reference, args.prompt_len)
                .map_err(|e| e.to_string())?;
            let mut session = DecodeSession::new(bundle.decode, &bundle.reference, interp.clone())
                .map_err(|e| e.to_string())?;
            let start = std::time::Instant::now();
            let report =
                greedy_decode(&mut session, &prompt, args.max_new).map_err(|e| e.to_string())?;
            Ok((report, start.elapsed().as_secs_f64(), prompt))
        });
        match result {
            Ok((report, wall_s, prompt)) => {
                let tok_s = if wall_s > 0.0 {
                    args.max_new as f64 / wall_s
                } else {
                    0.0
                };
                println!(
                    "{alias} ({}, quant {}): prompt {:?} -> {:?}",
                    scale.name(),
                    interp.quant().label(),
                    prompt[0],
                    report.tokens[0]
                );
                println!(
                    "  {} tokens in {:.3}s ({:.0} tok/s), cache hit rate {:.1}%",
                    args.max_new,
                    wall_s,
                    tok_s,
                    report.cache.hit_rate() * 100.0
                );
            }
            Err(e) => {
                eprintln!("generate failed for {alias}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("generate") => run_generate(&argv[1..]),
        Some("verify") => run_verify(&argv[1..]),
        Some("sanitize") => run_sanitize(&argv[1..]),
        Some("serve") => run_serve(&argv[1..]),
        Some("shard") => run_shard(&argv[1..]),
        Some("run") => run_bench(&argv[1..]),
        Some("ci") => run_ci(&argv[1..]),
        Some("help") => print_help(),
        Some(cmd) if !cmd.starts_with('-') => {
            eprintln!("unknown subcommand '{cmd}'");
            usage()
        }
        _ => run_bench(&argv),
    }
}

fn run_verify(argv: &[String]) -> ExitCode {
    let args = parse_verify_args(argv);
    let bench = NonGemmBench::new(BenchConfig {
        models: args.models.clone(),
        batch: args.batch,
        scale: if args.tiny { Scale::Tiny } else { Scale::Full },
        threads: args.threads,
        opt_level: args.opt_level,
        intra_op: args.intra_op,
        ..BenchConfig::default()
    });
    let reports = match bench.verify() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("no models matched the selection");
        return ExitCode::FAILURE;
    }
    let mut denied = 0usize;
    for report in &reports {
        denied += report.deny_count();
        match args.format {
            Format::Json => println!("{}", report.to_json()),
            _ => println!("{}", report.to_text(args.all)),
        }
    }
    if denied > 0 {
        eprintln!(
            "verify: {denied} deny-level finding(s) across {} model(s)",
            reports.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_sanitize(argv: &[String]) -> ExitCode {
    let args = parse_sanitize_args(argv);
    let bench = NonGemmBench::new(BenchConfig {
        models: args.models.clone(),
        batch: args.batch,
        scale: if args.tiny { Scale::Tiny } else { Scale::Full },
        threads: args.threads,
        opt_level: args.opt_level,
        intra_op: args.intra_op,
        ..BenchConfig::default()
    });
    let reports = match bench.sanitize(!args.static_only) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sanitize failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("no models matched the selection");
        return ExitCode::FAILURE;
    }
    let mut hazards = 0usize;
    for report in &reports {
        hazards += report.hazards.len();
        match args.format {
            Format::Json => println!("{}", report.to_json()),
            _ => println!("{}", report.to_text()),
        }
    }
    if hazards > 0 {
        eprintln!(
            "sanitize: {hazards} hazard(s) across {} model(s)",
            reports.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Resolves `--model` selections against the registry, exiting like the
/// other subcommands when nothing matches.
fn select_models(names: &[String]) -> Vec<ModelId> {
    let selected: Vec<ModelId> = if names.is_empty() {
        ModelId::all().to_vec()
    } else {
        ModelId::all()
            .iter()
            .copied()
            .filter(|m| names.iter().any(|n| n == m.spec().alias))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no models matched the selection");
        std::process::exit(1);
    }
    selected
}

fn run_ci(argv: &[String]) -> ExitCode {
    let args = parse_ci_args(argv);
    let wallclock_enabled = !args.no_wallclock && !regress::wallclock_disabled_by_env();
    let cfg = regress::GateConfig {
        dir: std::path::PathBuf::from(&args.dir),
        models: select_models(&args.models),
        wallclock_iters: wallclock_enabled.then_some(args.wallclock_iters),
        tolerance: regress::Tolerance::from_env(),
    };

    if args.update {
        let outcome = match regress::update(&cfg) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("ci --update failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match args.format {
            Format::Text => print!("{}", outcome.to_text()),
            _ => println!(
                "{}",
                serde_json::to_string_pretty(&outcome).expect("outcomes serialize")
            ),
        }
        let bench_path = std::path::Path::new(&args.bench);
        match regress::refresh_bench_seed(&cfg, bench_path) {
            Ok(n) => eprintln!("refreshed {} entry(ies) in {}", n, bench_path.display()),
            Err(e) => {
                eprintln!("refreshing {} failed: {e}", bench_path.display());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match regress::check(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ci --check failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.format {
        Format::Text => print!("{}", outcome.to_text()),
        _ => println!("{}", outcome.to_json()),
    }
    if let Some(path) = &args.report {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("failed to create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut json = outcome.to_json();
        json.push('\n');
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_serve(argv: &[String]) -> ExitCode {
    let config = parse_serve_args(argv);
    let handle = match nongemm::serve::Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // stdout so scripts can scrape the ephemeral port; flushed eagerly
    // because the interesting consumers are pipes
    println!("ngb-serve listening on {}", handle.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let stats = handle.join();
    println!(
        "ngb-serve drained: accepted {} completed {} rejected {} errors {} \
         batches {} max-batch {}",
        stats.accepted,
        stats.completed,
        stats.rejected,
        stats.errors,
        stats.batches,
        stats.max_batch
    );
    if stats.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_bench(argv: &[String]) -> ExitCode {
    let args = parse_run_args(argv);
    let platform = if args.cpu_only {
        args.platform.clone().cpu_only()
    } else {
        args.platform.clone()
    };
    let bench = NonGemmBench::new(BenchConfig {
        models: args.models.clone(),
        platform,
        use_gpu: !args.cpu_only,
        flow: args.flow,
        batch: args.batch,
        scale: if args.tiny { Scale::Tiny } else { Scale::Full },
        iterations: 3,
        threads: args.threads,
        opt_level: args.opt_level,
        intra_op: args.intra_op,
        sanitize: args.sanitize,
    });

    if args.microbench {
        return run_microbench(&bench, args.format);
    }

    let profiles = if args.measured {
        bench.run_measured()
    } else {
        bench.run_end_to_end()
    };
    let profiles = match profiles {
        Ok(p) => p,
        Err(e) => {
            eprintln!("profiling failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.format == Format::Csv {
        println!("{}", csv_header());
    }
    for profile in &profiles {
        let report = PerformanceReport::from_profile(profile);
        match args.format {
            Format::Text => println!("{}", report.to_text()),
            Format::Csv => println!("{}", report.to_csv_row()),
            Format::Json => println!(
                "{}",
                serde_json::to_string(&report).expect("reports serialize")
            ),
        }
        if let Some(dir) = &args.trace {
            let path = format!("{dir}/{}.trace.json", profile.model);
            if let Err(e) = std::fs::write(&path, to_chrome_trace(profile)) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
    }
    ExitCode::SUCCESS
}

fn run_microbench(bench: &NonGemmBench, format: Format) -> ExitCode {
    let (registry, results) = match bench.run_microbench() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("microbench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match format {
        Format::Json => {
            println!(
                "{}",
                serde_json::to_string(&results).expect("results serialize")
            );
        }
        Format::Csv => {
            println!("op,model,analytic_us,analytic_mj");
            for r in &results {
                println!(
                    "{},{},{:.3},{:.3}",
                    r.op,
                    r.model,
                    r.analytic_s * 1e6,
                    r.analytic_j * 1e3
                );
            }
        }
        Format::Text => {
            println!("{} unique non-GEMM operator instances", registry.len());
            for (group, count) in registry.group_stats() {
                println!("  {group:<16}{count:>6}");
            }
        }
    }
    ExitCode::SUCCESS
}
