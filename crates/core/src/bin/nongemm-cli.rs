//! `nongemm-cli` — command-line front end of the benchmark harness.
//!
//! ```text
//! nongemm-cli [run] [OPTIONS]
//!   --model <alias>       model alias (repeatable; default: all 18)
//!   --platform <p>        mobile | workstation | datacenter  (default: datacenter)
//!   --flow <f>            eager | torchscript | dynamo | ort (default: eager)
//!   --batch <n>           batch size (default: 1)
//!   --cpu-only            drop the GPU from the platform
//!   --tiny                use the executable tiny presets
//!   --measured            execute on the host instead of the analytic models
//!   --microbench          run the microbench flow instead of end-to-end
//!   --threads <n>         worker threads for --measured (default: $NGB_THREADS or 1)
//!   --opt-level <0|1|2>   graph-rewrite level (default: $NGB_OPT or 0)
//!   --format <fmt>        text | csv | json (default: text)
//!   --trace <path>        also write a Chrome trace JSON per model
//!
//! nongemm-cli verify [OPTIONS]
//!   --model <alias>       model alias (repeatable; default: all 18)
//!   --batch <n>           batch size (default: 1)
//!   --tiny                use the executable tiny presets
//!   --threads <n>         analyze models concurrently (default: $NGB_THREADS or 1)
//!   --opt-level <0|1|2>   analyze the rewritten graphs (default: $NGB_OPT or 0)
//!   --format <fmt>        text | json (default: text)
//!   --all                 include allow-level findings in text output
//! ```
//!
//! `--opt-level` (or the `NGB_OPT` environment variable) runs the
//! `ngb-opt` graph rewriter over every built graph before profiling or
//! verification: `1` applies the bit-identical fusions, `2` adds
//! Conv+BN folding (tolerance-equivalent; see DESIGN.md §12).
//!
//! `verify` runs the `ngb-analyze` static analyzer over the selected
//! model graphs and exits 0 when every report is clean, 1 when any
//! deny-level diagnostic fires, and 2 on usage errors.

use std::process::ExitCode;

use nongemm::profiler::report::{csv_header, PerformanceReport};
use nongemm::profiler::trace::to_chrome_trace;
use nongemm::{BenchConfig, Flow, NonGemmBench, OptLevel, Platform, Scale};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Csv,
    Json,
}

#[derive(Debug)]
struct Args {
    models: Vec<String>,
    platform: Platform,
    flow: Flow,
    batch: usize,
    cpu_only: bool,
    tiny: bool,
    measured: bool,
    microbench: bool,
    threads: usize,
    opt_level: Option<OptLevel>,
    format: Format,
    trace: Option<String>,
}

#[derive(Debug)]
struct VerifyArgs {
    models: Vec<String>,
    batch: usize,
    tiny: bool,
    threads: usize,
    opt_level: Option<OptLevel>,
    format: Format,
    all: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: nongemm-cli [run] [--model <alias>]... [--platform mobile|workstation|datacenter]\n\
         \x20      [--flow eager|torchscript|dynamo|ort] [--batch N] [--cpu-only] [--tiny]\n\
         \x20      [--measured] [--microbench] [--threads N] [--opt-level 0|1|2]\n\
         \x20      [--format text|csv|json] [--trace <path>]\n\
         \x20  nongemm-cli verify [--model <alias>]... [--batch N] [--tiny] [--threads N]\n\
         \x20      [--opt-level 0|1|2] [--format text|json] [--all]"
    );
    std::process::exit(2);
}

/// Pops the next value for a `--flag <value>` option or dies with usage.
fn take_value(it: &mut std::slice::Iter<'_, String>, name: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("{name} requires a value");
        usage()
    })
}

fn parse_threads(v: &str) -> usize {
    match v.parse() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads requires a positive integer");
            usage()
        }
    }
}

fn parse_opt_level(v: &str) -> OptLevel {
    OptLevel::parse(v).unwrap_or_else(|| {
        eprintln!("--opt-level requires 0, 1, or 2");
        usage()
    })
}

fn parse_run_args(argv: &[String]) -> Args {
    let mut args = Args {
        models: Vec::new(),
        platform: Platform::data_center(),
        flow: Flow::Eager,
        batch: 1,
        cpu_only: false,
        tiny: false,
        measured: false,
        microbench: false,
        threads: 0,
        opt_level: None,
        format: Format::Text,
        trace: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--platform" => {
                args.platform = match take_value(&mut it, "--platform").as_str() {
                    "mobile" => Platform::mobile(),
                    "workstation" => Platform::workstation(),
                    "datacenter" | "data-center" => Platform::data_center(),
                    other => {
                        eprintln!("unknown platform '{other}'");
                        usage()
                    }
                }
            }
            "--flow" => {
                args.flow = match take_value(&mut it, "--flow").as_str() {
                    "eager" => Flow::Eager,
                    "torchscript" => Flow::TorchScript,
                    "dynamo" => Flow::Dynamo,
                    "ort" => Flow::Ort,
                    other => {
                        eprintln!("unknown flow '{other}'");
                        usage()
                    }
                }
            }
            "--batch" => {
                args.batch = take_value(&mut it, "--batch").parse().unwrap_or_else(|_| {
                    eprintln!("--batch requires a positive integer");
                    usage()
                })
            }
            "--cpu-only" => args.cpu_only = true,
            "--tiny" => args.tiny = true,
            "--measured" => args.measured = true,
            "--microbench" => args.microbench = true,
            "--threads" => args.threads = parse_threads(&take_value(&mut it, "--threads")),
            "--opt-level" => {
                args.opt_level = Some(parse_opt_level(&take_value(&mut it, "--opt-level")))
            }
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    other => {
                        eprintln!("unknown format '{other}'");
                        usage()
                    }
                }
            }
            "--trace" => {
                let v = take_value(&mut it, "--trace");
                args.trace = Some(v);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    args
}

fn parse_verify_args(argv: &[String]) -> VerifyArgs {
    let mut args = VerifyArgs {
        models: Vec::new(),
        batch: 1,
        tiny: false,
        threads: 0,
        opt_level: None,
        format: Format::Text,
        all: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = take_value(&mut it, "--model");
                args.models.push(v);
            }
            "--batch" => {
                args.batch = take_value(&mut it, "--batch").parse().unwrap_or_else(|_| {
                    eprintln!("--batch requires a positive integer");
                    usage()
                })
            }
            "--tiny" => args.tiny = true,
            "--all" => args.all = true,
            "--threads" => args.threads = parse_threads(&take_value(&mut it, "--threads")),
            "--opt-level" => {
                args.opt_level = Some(parse_opt_level(&take_value(&mut it, "--opt-level")))
            }
            "--format" => {
                args.format = match take_value(&mut it, "--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("verify supports --format text|json, not '{other}'");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("verify") => run_verify(&argv[1..]),
        Some("run") => run_bench(&argv[1..]),
        Some(cmd) if !cmd.starts_with('-') => {
            eprintln!("unknown subcommand '{cmd}'");
            usage()
        }
        _ => run_bench(&argv),
    }
}

fn run_verify(argv: &[String]) -> ExitCode {
    let args = parse_verify_args(argv);
    let bench = NonGemmBench::new(BenchConfig {
        models: args.models.clone(),
        batch: args.batch,
        scale: if args.tiny { Scale::Tiny } else { Scale::Full },
        threads: args.threads,
        opt_level: args.opt_level,
        ..BenchConfig::default()
    });
    let reports = match bench.verify() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("no models matched the selection");
        return ExitCode::FAILURE;
    }
    let mut denied = 0usize;
    for report in &reports {
        denied += report.deny_count();
        match args.format {
            Format::Json => println!("{}", report.to_json()),
            _ => println!("{}", report.to_text(args.all)),
        }
    }
    if denied > 0 {
        eprintln!(
            "verify: {denied} deny-level finding(s) across {} model(s)",
            reports.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_bench(argv: &[String]) -> ExitCode {
    let args = parse_run_args(argv);
    let platform = if args.cpu_only {
        args.platform.clone().cpu_only()
    } else {
        args.platform.clone()
    };
    let bench = NonGemmBench::new(BenchConfig {
        models: args.models.clone(),
        platform,
        use_gpu: !args.cpu_only,
        flow: args.flow,
        batch: args.batch,
        scale: if args.tiny { Scale::Tiny } else { Scale::Full },
        iterations: 3,
        threads: args.threads,
        opt_level: args.opt_level,
    });

    if args.microbench {
        return run_microbench(&bench, args.format);
    }

    let profiles = if args.measured {
        bench.run_measured()
    } else {
        bench.run_end_to_end()
    };
    let profiles = match profiles {
        Ok(p) => p,
        Err(e) => {
            eprintln!("profiling failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.format == Format::Csv {
        println!("{}", csv_header());
    }
    for profile in &profiles {
        let report = PerformanceReport::from_profile(profile);
        match args.format {
            Format::Text => println!("{}", report.to_text()),
            Format::Csv => println!("{}", report.to_csv_row()),
            Format::Json => println!(
                "{}",
                serde_json::to_string(&report).expect("reports serialize")
            ),
        }
        if let Some(dir) = &args.trace {
            let path = format!("{dir}/{}.trace.json", profile.model);
            if let Err(e) = std::fs::write(&path, to_chrome_trace(profile)) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
    }
    ExitCode::SUCCESS
}

fn run_microbench(bench: &NonGemmBench, format: Format) -> ExitCode {
    let (registry, results) = match bench.run_microbench() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("microbench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match format {
        Format::Json => {
            println!(
                "{}",
                serde_json::to_string(&results).expect("results serialize")
            );
        }
        Format::Csv => {
            println!("op,model,analytic_us,analytic_mj");
            for r in &results {
                println!(
                    "{},{},{:.3},{:.3}",
                    r.op,
                    r.model,
                    r.analytic_s * 1e6,
                    r.analytic_j * 1e3
                );
            }
        }
        Format::Text => {
            println!("{} unique non-GEMM operator instances", registry.len());
            for (group, count) in registry.group_stats() {
                println!("  {group:<16}{count:>6}");
            }
        }
    }
    ExitCode::SUCCESS
}
