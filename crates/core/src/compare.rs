//! Benchmark feature comparison (paper Table 5).

use serde::Serialize;

/// Feature vector of an ML benchmark, as compared in Table 5.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkFeatures {
    /// Benchmark name.
    pub name: &'static str,
    /// Model selection driven by real usage/popularity.
    pub real_usage_driven: bool,
    /// Focuses on non-GEMM operators specifically.
    pub non_gemm_focused: bool,
    /// Evaluates on real datasets.
    pub real_dataset_driven: bool,
    /// Users can plug custom models and profile them.
    pub plug_model_and_profile: bool,
}

/// The Table 5 comparison: MLPerf, LongTail Bench, TorchBench, and
/// NonGEMM Bench (this work).
pub fn comparison_table() -> Vec<BenchmarkFeatures> {
    vec![
        BenchmarkFeatures {
            name: "MLPerf",
            real_usage_driven: false,
            non_gemm_focused: false,
            real_dataset_driven: true,
            plug_model_and_profile: false,
        },
        BenchmarkFeatures {
            name: "LongTailBench",
            real_usage_driven: false,
            non_gemm_focused: true,
            real_dataset_driven: false,
            plug_model_and_profile: false,
        },
        BenchmarkFeatures {
            name: "TorchBench",
            real_usage_driven: true,
            non_gemm_focused: false,
            real_dataset_driven: false,
            plug_model_and_profile: false,
        },
        BenchmarkFeatures {
            name: "NonGEMMBench (this work)",
            real_usage_driven: true,
            non_gemm_focused: true,
            real_dataset_driven: true,
            plug_model_and_profile: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_nongemm_bench_has_all_features() {
        let t = comparison_table();
        assert_eq!(t.len(), 4);
        let full = t
            .iter()
            .filter(|b| {
                b.real_usage_driven
                    && b.non_gemm_focused
                    && b.real_dataset_driven
                    && b.plug_model_and_profile
            })
            .count();
        assert_eq!(full, 1);
        assert!(t.last().unwrap().name.contains("this work"));
    }
}
