//! # nongemm — NonGEMM Bench in Rust
//!
//! A from-scratch Rust reproduction of *NonGEMM Bench: Understanding the
//! Performance Horizon of the Latest ML Workloads with NonGEMM Workloads*
//! (ISPASS 2025): a benchmark and profiling harness that breaks ML
//! inference down into **GEMM** and **non-GEMM** operators and shows how
//! GPU acceleration shifts the Amdahl's-law balance toward the non-GEMM
//! side.
//!
//! This crate is the facade: it re-exports every subsystem and provides
//! the [`NonGemmBench`] harness that mirrors the paper's Figure 4 — model
//! registry in, end-to-end and microbench flows out.
//!
//! ## Subsystems
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `ngb-tensor` | strided tensors with view semantics |
//! | [`ops`] | `ngb-ops` | executable kernels + analytic costs |
//! | [`graph`] | `ngb-graph` | operator-graph IR and classification |
//! | [`exec`] | `ngb-exec` | sequential + parallel graph execution engine |
//! | [`analyze`] | `ngb-analyze` | static graph analysis + lint diagnostics |
//! | [`sanitize`] | `ngb-sanitize` | schedule/memory hazard verifier + fault injection |
//! | [`models`] | `ngb-models` | the 18 Table 1 model builders |
//! | [`platform`] | `ngb-platform` | Table 3 device roofline models |
//! | [`runtime`] | `ngb-runtime` | deployment flows (eager/TS/Dynamo/ORT) |
//! | [`profiler`] | `ngb-profiler` | end-to-end profiling + reports |
//! | [`regress`] | `ngb-regress` | perf-regression gate + golden baselines |
//! | [`shard`] | `ngb-shard` | multi-device partitioner + executed collectives |
//! | [`microbench`] | `ngb-microbench` | harvested non-GEMM op registry |
//! | [`data`] | `ngb-data` | synthetic ImageNet/COCO/wikitext |
//!
//! ## Quickstart
//!
//! ```
//! use nongemm::{BenchConfig, NonGemmBench};
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let bench = NonGemmBench::new(BenchConfig {
//!     models: vec!["gpt2".into()],
//!     scale: nongemm::Scale::Full,
//!     ..BenchConfig::default()
//! });
//! let profiles = bench.run_end_to_end()?;
//! let breakdown = profiles[0].breakdown();
//! println!("non-GEMM share: {:.0}%", breakdown.non_gemm_frac() * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use ngb_analyze as analyze;
pub use ngb_data as data;
pub use ngb_exec as exec;
pub use ngb_graph as graph;
pub use ngb_microbench as microbench;
pub use ngb_models as models;
pub use ngb_ops as ops;
pub use ngb_opt as opt;
pub use ngb_platform as platform;
pub use ngb_profiler as profiler;
pub use ngb_regress as regress;
pub use ngb_runtime as runtime;
pub use ngb_sanitize as sanitize;
pub use ngb_serve as serve;
pub use ngb_shard as shard;
pub use ngb_tensor as tensor;

pub use ngb_analyze::{AnalysisReport, Analyzer, Lint, LintConfig, Severity};
pub use ngb_exec::{Engine, ExecutionTrace, Interpreter, ParallelExecutor, Schedule, ThreadPool};
pub use ngb_graph::{Graph, NonGemmGroup, OpClass, OpKind};
pub use ngb_microbench::{MicroResult, OperatorRegistry};
pub use ngb_models::{ModelId, ModelRegistry, Scale, Task};
pub use ngb_opt::{optimize, optimize_with, OptLevel, OptReport};
pub use ngb_platform::{DeviceModel, HardwareClass, Platform};
pub use ngb_profiler::report::{NonGemmReport, PerformanceReport, WorkloadReport};
pub use ngb_profiler::{Breakdown, ModelProfile};
pub use ngb_regress::{CheckOutcome, GateConfig, ModelBaseline, Tolerance, UpdateOutcome};
pub use ngb_runtime::Flow;
pub use ngb_sanitize::{Hazard, HazardKind, SanitizeReport};

mod compare;
pub use compare::{comparison_table, BenchmarkFeatures};

use ngb_tensor::TensorError;

/// Inputs of a benchmark run (the paper's Figure 4 input block: models,
/// deployment flow, datasets are implied by the models, misc
/// configuration).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Model aliases to run; empty means the full 18-model registry.
    pub models: Vec<String>,
    /// Deployment software flow.
    pub flow: Flow,
    /// Hardware platform.
    pub platform: Platform,
    /// Run on the platform's GPU when present.
    pub use_gpu: bool,
    /// Batch size.
    pub batch: usize,
    /// Model scale (full = paper configs, tiny = executable toys).
    pub scale: Scale,
    /// Iterations for measured (host-executed) profiling.
    pub iterations: usize,
    /// Worker threads for measured execution and verification.
    /// `0` means auto: honor `NGB_THREADS` when set, else run sequentially.
    pub threads: usize,
    /// Graph-rewrite optimization level applied to every built graph.
    /// `None` means auto: honor `NGB_OPT` when set, else `O0`.
    pub opt_level: Option<OptLevel>,
    /// Intra-op data parallelism for measured execution.
    /// `None` means auto: honor `NGB_INTRAOP` when set, else on.
    pub intra_op: Option<bool>,
    /// Shadow-memory execution sanitizer for measured execution.
    /// `None` means auto: honor `NGB_SANITIZE` when set, else off.
    pub sanitize: Option<bool>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            models: Vec::new(),
            flow: Flow::Eager,
            platform: Platform::data_center(),
            use_gpu: true,
            batch: 1,
            scale: Scale::Full,
            iterations: 3,
            threads: 0,
            opt_level: None,
            intra_op: None,
            sanitize: None,
        }
    }
}

/// The top-level harness: builds the selected models and runs the
/// end-to-end and microbench flows.
#[derive(Debug)]
pub struct NonGemmBench {
    config: BenchConfig,
}

impl NonGemmBench {
    /// Creates a harness from `config`.
    pub fn new(config: BenchConfig) -> NonGemmBench {
        NonGemmBench { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BenchConfig {
        &self.config
    }

    /// Models selected by the configuration.
    pub fn selected_models(&self) -> Vec<ModelId> {
        if self.config.models.is_empty() {
            ModelId::all().to_vec()
        } else {
            ModelId::all()
                .iter()
                .copied()
                .filter(|m| self.config.models.iter().any(|n| n == m.spec().alias))
                .collect()
        }
    }

    /// Effective optimization level: the explicit `opt_level` setting, or
    /// `NGB_OPT` (falling back to [`OptLevel::O0`]) when unset.
    pub fn effective_opt_level(&self) -> OptLevel {
        self.config.opt_level.unwrap_or_else(OptLevel::from_env)
    }

    /// Builds the operator graphs for the selected models, rewritten at
    /// [`NonGemmBench::effective_opt_level`]. Every flow — end-to-end,
    /// measured, microbench, verify — therefore sees the optimized graphs.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build_graphs(&self) -> Result<Vec<Graph>, TensorError> {
        Ok(self
            .build_graphs_with_reports()?
            .into_iter()
            .map(|(g, _)| g)
            .collect())
    }

    /// Like [`NonGemmBench::build_graphs`], but also returns what the
    /// optimizer did to each graph.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build_graphs_with_reports(&self) -> Result<Vec<(Graph, OptReport)>, TensorError> {
        let level = self.effective_opt_level();
        self.selected_models()
            .into_iter()
            .map(|m| {
                let g = m.build(self.config.batch, self.config.scale)?;
                Ok(ngb_opt::optimize(&g, level))
            })
            .collect()
    }

    /// Runs the end-to-end flow analytically on the configured platform,
    /// returning one profile per selected model.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn run_end_to_end(&self) -> Result<Vec<ModelProfile>, TensorError> {
        Ok(self
            .build_graphs()?
            .iter()
            .map(|g| {
                ngb_profiler::profile_analytic(
                    g,
                    &self.config.platform,
                    self.config.flow,
                    self.config.use_gpu,
                    self.config.batch,
                )
            })
            .collect())
    }

    /// Effective worker-thread count: the explicit `threads` setting, or
    /// `NGB_THREADS` (falling back to 1) when the setting is `0` (auto).
    pub fn effective_threads(&self) -> usize {
        if self.config.threads == 0 {
            ngb_exec::env_threads(1)
        } else {
            self.config.threads
        }
    }

    /// Effective intra-op parallelism switch: the explicit `intra_op`
    /// setting, or `NGB_INTRAOP` (falling back to on) when unset.
    pub fn effective_intra_op(&self) -> bool {
        self.config
            .intra_op
            .unwrap_or_else(|| ngb_exec::env_intraop(true))
    }

    /// Effective shadow-memory sanitizer switch: the explicit `sanitize`
    /// setting, or `NGB_SANITIZE` (falling back to off) when unset.
    pub fn effective_sanitize(&self) -> bool {
        self.config
            .sanitize
            .unwrap_or_else(|| ngb_exec::env_sanitize(false))
    }

    /// The execution engine measured runs use, derived from
    /// [`NonGemmBench::effective_threads`].
    pub fn engine(&self) -> Engine {
        match self.effective_threads() {
            0 | 1 => Engine::Sequential,
            n => Engine::Parallel(n),
        }
    }

    /// Runs the end-to-end flow by real host execution (sensible with
    /// [`Scale::Tiny`]), on the engine selected by the `threads` setting.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction or kernel errors.
    pub fn run_measured(&self) -> Result<Vec<ModelProfile>, TensorError> {
        let engine = self.engine();
        let intra_op = self.effective_intra_op();
        let sanitize = self.effective_sanitize();
        self.build_graphs()?
            .iter()
            .map(|g| {
                ngb_profiler::profile_measured_checked(
                    g,
                    self.config.iterations,
                    0x5eed,
                    engine,
                    Some(intra_op),
                    Some(sanitize),
                )
            })
            .collect()
    }

    /// Runs the `ngb-sanitize` static hazard verifier over every selected
    /// model's graph — happens-before coverage, storage-interference
    /// soundness, partition disjointness — one report per model. With
    /// `execute` set, each statically clean graph is additionally executed
    /// under the shadow-memory sanitizer on the configured engine; a
    /// runtime violation is appended to that model's report as a
    /// [`HazardKind::Runtime`] hazard instead of failing the sweep.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors (sanitizer findings are
    /// reported, not raised).
    pub fn sanitize(&self, execute: bool) -> Result<Vec<SanitizeReport>, TensorError> {
        let engine = self.engine();
        let intra_op = self.effective_intra_op();
        self.build_graphs()?
            .iter()
            .map(|g| {
                let mut report = ngb_sanitize::verify_graph(g);
                if execute && report.is_clean() {
                    let run = Interpreter::new(0x5eed)
                        .engine(engine)
                        .intra_op(intra_op)
                        .sanitize(true)
                        .run(g);
                    if let Err(e) = run {
                        report.push(
                            HazardKind::Runtime,
                            Vec::new(),
                            format!("sanitized execution failed: {e}"),
                        );
                    }
                }
                Ok(report)
            })
            .collect()
    }

    /// Runs the microbench flow: harvests every non-GEMM operator instance
    /// of the selected models into a registry and evaluates each on the
    /// configured device.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn run_microbench(&self) -> Result<(OperatorRegistry, Vec<MicroResult>), TensorError> {
        let graphs = self.build_graphs()?;
        let mut registry = OperatorRegistry::new();
        registry.harvest_suite(graphs.iter());
        let device = if self.config.use_gpu && self.config.platform.has_gpu() {
            self.config.platform.gpu.clone().expect("checked")
        } else {
            self.config.platform.cpu.clone()
        };
        let results = registry
            .iter()
            .map(|r| registry.evaluate(r, &device))
            .collect();
        Ok((registry, results))
    }

    /// Runs the `ngb-analyze` static analyzer over every selected model's
    /// graph (the `nongemm-cli verify` flow), one report per model, in the
    /// original selection order. With more than one effective thread the
    /// models are analyzed concurrently on a [`ThreadPool`].
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn verify(&self) -> Result<Vec<AnalysisReport>, TensorError> {
        let graphs = self.build_graphs()?;
        let threads = self.effective_threads().min(graphs.len().max(1));
        if threads <= 1 {
            let analyzer = Analyzer::new();
            return Ok(graphs.iter().map(|g| analyzer.analyze(g)).collect());
        }
        let pool = ThreadPool::new(threads);
        let (tx, rx) = std::sync::mpsc::channel();
        let n = graphs.len();
        for (i, g) in graphs.into_iter().enumerate() {
            let tx = tx.clone();
            pool.spawn(move |_worker| {
                let _ = tx.send((i, Analyzer::new().analyze(&g)));
            });
        }
        drop(tx);
        let mut reports: Vec<Option<AnalysisReport>> = (0..n).map(|_| None).collect();
        for (i, report) in rx {
            reports[i] = Some(report);
        }
        Ok(reports
            .into_iter()
            .map(|r| r.expect("every verify job reports"))
            .collect())
    }

    /// Emits the three §3.2.4 reports for every selected model.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn reports(
        &self,
    ) -> Result<Vec<(PerformanceReport, WorkloadReport, NonGemmReport)>, TensorError> {
        let graphs = self.build_graphs()?;
        let profiles = self.run_end_to_end()?;
        Ok(graphs
            .iter()
            .zip(&profiles)
            .map(|(g, p)| {
                (
                    PerformanceReport::from_profile(p),
                    WorkloadReport::from_graph(g),
                    NonGemmReport::from_graph(g),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_selects_all_models() {
        let b = NonGemmBench::new(BenchConfig::default());
        assert_eq!(b.selected_models().len(), 18);
    }

    #[test]
    fn named_selection() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into(), "vit-l".into()],
            ..BenchConfig::default()
        });
        let sel = b.selected_models();
        assert_eq!(sel.len(), 2);
        assert!(sel.contains(&ModelId::Gpt2));
        assert!(sel.contains(&ModelId::VitLarge16));
    }

    #[test]
    fn end_to_end_and_reports() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into()],
            scale: Scale::Tiny,
            ..BenchConfig::default()
        });
        let profiles = b.run_end_to_end().unwrap();
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].total_latency_s() > 0.0);
        let reports = b.reports().unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].0.latency_ms > 0.0);
    }

    #[test]
    fn measured_flow_runs_tiny_models() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["bert".into()],
            scale: Scale::Tiny,
            iterations: 1,
            ..BenchConfig::default()
        });
        let p = b.run_measured().unwrap();
        assert_eq!(p.len(), 1);
        assert!(p[0].total_latency_s() > 0.0);
    }

    #[test]
    fn verify_flow_is_clean_for_presets() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into(), "resnet50".into()],
            scale: Scale::Tiny,
            ..BenchConfig::default()
        });
        let reports = b.verify().unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.is_clean(), "{}: {:?}", r.graph_name, r.deny_count());
            assert!(r.census.nodes > 0);
        }
    }

    #[test]
    fn parallel_verify_preserves_model_order() {
        let models = vec!["gpt2".into(), "resnet50".into(), "bert".into()];
        let seq = NonGemmBench::new(BenchConfig {
            models: models.clone(),
            scale: Scale::Tiny,
            threads: 1,
            ..BenchConfig::default()
        });
        let par = NonGemmBench::new(BenchConfig {
            models,
            scale: Scale::Tiny,
            threads: 4,
            ..BenchConfig::default()
        });
        let a = seq.verify().unwrap();
        let b = par.verify().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph_name, y.graph_name);
            assert_eq!(x.diagnostics.len(), y.diagnostics.len());
            assert_eq!(x.parallelism, y.parallelism);
        }
    }

    #[test]
    fn sanitize_flow_is_hazard_free_for_presets() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into(), "mrcnn".into()],
            scale: Scale::Tiny,
            threads: 2,
            sanitize: Some(true),
            ..BenchConfig::default()
        });
        assert!(b.effective_sanitize());
        let reports = b.sanitize(true).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.is_clean(), "{}", r.to_text());
            assert!(r.stats.ordered_pairs_proved > 0, "{}", r.graph_name);
        }
    }

    #[test]
    fn threads_setting_picks_the_engine() {
        let mk = |threads| {
            NonGemmBench::new(BenchConfig {
                threads,
                ..BenchConfig::default()
            })
        };
        assert_eq!(mk(1).engine(), Engine::Sequential);
        assert_eq!(mk(4).engine(), Engine::Parallel(4));
        assert_eq!(mk(4).effective_threads(), 4);
    }

    #[test]
    fn intra_op_setting_resolves() {
        let mk = |intra_op| {
            NonGemmBench::new(BenchConfig {
                intra_op,
                ..BenchConfig::default()
            })
        };
        assert!(mk(Some(true)).effective_intra_op());
        assert!(!mk(Some(false)).effective_intra_op());
    }

    #[test]
    fn measured_flow_is_identical_with_intra_op_on_and_off() {
        let mk = |intra_op| {
            NonGemmBench::new(BenchConfig {
                models: vec!["gpt2".into()],
                scale: Scale::Tiny,
                iterations: 1,
                threads: 2,
                intra_op: Some(intra_op),
                ..BenchConfig::default()
            })
        };
        let on = mk(true).run_measured().unwrap();
        let off = mk(false).run_measured().unwrap();
        assert_eq!(on[0].nodes.len(), off[0].nodes.len());
        for (a, b) in on[0].nodes.iter().zip(&off[0].nodes) {
            // chunk partitioning is shape-pure: same count either way
            assert_eq!(a.intra_chunks, b.intra_chunks, "node {}", a.name);
        }
    }

    #[test]
    fn measured_flow_respects_the_parallel_engine() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["vit-b".into()],
            scale: Scale::Tiny,
            iterations: 1,
            threads: 2,
            ..BenchConfig::default()
        });
        let p = b.run_measured().unwrap();
        assert_eq!(p.len(), 1);
        assert!(p[0].total_latency_s() > 0.0);
    }

    #[test]
    fn opt_level_rewrites_built_graphs() {
        let mk = |opt_level| {
            NonGemmBench::new(BenchConfig {
                models: vec!["resnet50".into()],
                scale: Scale::Tiny,
                opt_level,
                ..BenchConfig::default()
            })
        };
        let unopt = mk(Some(OptLevel::O0)).build_graphs().unwrap();
        let built = mk(Some(OptLevel::O2)).build_graphs_with_reports().unwrap();
        let (g2, report) = &built[0];
        assert!(report.fusions() > 0, "resnet50 has conv+bn+relu chains");
        assert!(g2.len() < unopt[0].len());
        assert_eq!(
            mk(Some(OptLevel::O2)).effective_opt_level(),
            OptLevel::O2,
            "explicit setting wins over the environment"
        );
    }

    #[test]
    fn microbench_flow_builds_registry() {
        let b = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into(), "bert".into()],
            scale: Scale::Tiny,
            ..BenchConfig::default()
        });
        let (reg, results) = b.run_microbench().unwrap();
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), results.len());
    }
}
