//! `loadgen` — open-loop load generator for `ngb-serve`.
//!
//! Arrivals are Poisson-ish: exponential inter-arrival times drawn from a
//! deterministic LCG, so a given `--seed`/`--rate` always replays the
//! same schedule. Each arrival runs on its own thread (open loop — a slow
//! server does not slow the arrival process, it builds queue), connects,
//! sends one `infer`, and records the end-to-end latency plus the
//! server's per-request profile record (batch size, queue wait).
//!
//! Each `--rate` is one sweep point; the report prints throughput and
//! p50/p95/p99 latency per point and `--summary` writes the same as JSON.

use std::io::Write as _;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ngb_serve::protocol::Request;
use ngb_serve::Client;
use serde_json::Value;

const HELP: &str = "\
loadgen — open-loop load generator for ngb-serve

USAGE:
  loadgen --addr <host:port> [OPTIONS]

OPTIONS:
  --addr <host:port>  server address (required)
  --rate <n>          arrivals per second; repeatable, one sweep point each
                      (default: 20)
  --duration-ms <n>   length of each sweep point (default: 1000)
  --model <mix>       model mix, e.g. \"bert\" or \"bert=3,sw-t=1\" (default: bert)
  --seed <n>          seed for the arrival schedule and input seeds (default: 1)
  --summary <path>    write the sweep summary as JSON
  --shutdown          send a graceful shutdown to the server after the sweep
  --fail-on-error     exit 1 when any request fails (admission rejections are
                      reported separately and do not count as failures)
  --help, -h          print this help

EXIT CODES:
  0  success    1  failure (connect error, zero completions, or
                   --fail-on-error with failures)    2  usage error
";

#[derive(Debug)]
struct Args {
    addr: String,
    rates: Vec<f64>,
    duration_ms: u64,
    mix: Vec<(String, u64)>,
    seed: u64,
    summary: Option<String>,
    shutdown: bool,
    fail_on_error: bool,
}

fn usage() -> ! {
    eprintln!("usage: loadgen --addr <host:port> [--rate <n>]... (see --help)");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        addr: String::new(),
        rates: Vec::new(),
        duration_ms: 1000,
        mix: Vec::new(),
        seed: 1,
        summary: None,
        shutdown: false,
        fail_on_error: false,
    };
    let mut it = argv.iter();
    let take = |it: &mut std::slice::Iter<'_, String>, name: &str| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("{name} requires a value");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = take(&mut it, "--addr"),
            "--rate" => {
                let v = take(&mut it, "--rate");
                match v.parse::<f64>() {
                    Ok(r) if r > 0.0 => args.rates.push(r),
                    _ => {
                        eprintln!("--rate requires a positive number");
                        usage()
                    }
                }
            }
            "--duration-ms" => {
                let v = take(&mut it, "--duration-ms");
                match v.parse::<u64>() {
                    Ok(n) if n >= 1 => args.duration_ms = n,
                    _ => {
                        eprintln!("--duration-ms requires a positive integer");
                        usage()
                    }
                }
            }
            "--model" => {
                let v = take(&mut it, "--model");
                for part in v.split(',') {
                    let (name, weight) = match part.split_once('=') {
                        Some((n, w)) => (
                            n.to_string(),
                            w.parse().unwrap_or_else(|_| {
                                eprintln!("bad model weight in '{part}'");
                                usage()
                            }),
                        ),
                        None => (part.to_string(), 1),
                    };
                    if name.is_empty() || weight == 0 {
                        eprintln!("bad model mix entry '{part}'");
                        usage()
                    }
                    args.mix.push((name, weight));
                }
            }
            "--seed" => {
                let v = take(&mut it, "--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed requires an integer");
                    usage()
                });
            }
            "--summary" => args.summary = Some(take(&mut it, "--summary")),
            "--shutdown" => args.shutdown = true,
            "--fail-on-error" => args.fail_on_error = true,
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage()
    }
    if args.rates.is_empty() {
        args.rates.push(20.0);
    }
    if args.mix.is_empty() {
        args.mix.push(("bert".to_string(), 1));
    }
    args
}

/// Deterministic 64-bit LCG (Knuth constants) — the arrival schedule must
/// replay exactly for a given seed.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64
    }

    /// Exponential with rate `lambda` (mean 1/lambda seconds).
    fn next_exp(&mut self, lambda: f64) -> f64 {
        -self.next_unit().ln() / lambda
    }
}

#[derive(Debug)]
enum Outcome {
    /// Latency in seconds + batch size the server formed.
    Completed { latency_s: f64, batch: u64 },
    /// Admission-control rejection (429/503) — reported, not dropped.
    Rejected,
    /// Transport or execution failure.
    Failed(String),
}

fn one_request(addr: &str, model: &str, id: u64, seed: u64) -> Outcome {
    let start = Instant::now();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return Outcome::Failed(format!("connect: {e}")),
    };
    let resp = match client.infer(model, &format!("lg-{id}"), seed) {
        Ok(v) => v,
        Err(e) => return Outcome::Failed(format!("request: {e}")),
    };
    if resp["ok"] == true {
        Outcome::Completed {
            latency_s: start.elapsed().as_secs_f64(),
            batch: resp["result"]["batch_size"].as_u64().unwrap_or(1),
        }
    } else {
        let code = resp["error"]["code"].as_u64().unwrap_or(0);
        if code == 429 || code == 503 {
            Outcome::Rejected
        } else {
            Outcome::Failed(format!(
                "server error {code}: {}",
                resp["error"]["message"].as_str().unwrap_or("?")
            ))
        }
    }
}

#[derive(Debug, Default)]
struct SweepPoint {
    rate: f64,
    sent: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_batch: u64,
    batched: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run_sweep_point(args: &Args, rate: f64, point_idx: usize) -> SweepPoint {
    let duration = Duration::from_millis(args.duration_ms);
    let mut lcg = Lcg(args.seed ^ (point_idx as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
    let total_weight: u64 = args.mix.iter().map(|(_, w)| w).sum();

    // draw the full arrival schedule up front
    let mut arrivals: Vec<(f64, String, u64)> = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += lcg.next_exp(rate);
        if t >= duration.as_secs_f64() {
            break;
        }
        let mut pick = lcg.next_u64() % total_weight;
        let model = args
            .mix
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map(|(m, _)| m.clone())
            .expect("weights cover the draw");
        let input_seed = lcg.next_u64() >> 12; // keep it in f64-exact JSON range
        arrivals.push((t, model, input_seed));
    }

    let (tx, rx) = mpsc::channel::<Outcome>();
    let start = Instant::now();
    let mut workers = Vec::new();
    for (i, (at, model, input_seed)) in arrivals.iter().enumerate() {
        let wait = Duration::from_secs_f64(*at).saturating_sub(start.elapsed());
        std::thread::sleep(wait);
        let tx = tx.clone();
        let addr = args.addr.clone();
        let model = model.clone();
        let input_seed = *input_seed;
        workers.push(std::thread::spawn(move || {
            let _ = tx.send(one_request(&addr, &model, i as u64, input_seed));
        }));
    }
    drop(tx);

    let mut point = SweepPoint {
        rate,
        sent: arrivals.len() as u64,
        ..SweepPoint::default()
    };
    let mut latencies = Vec::new();
    for outcome in rx {
        match outcome {
            Outcome::Completed { latency_s, batch } => {
                point.completed += 1;
                point.max_batch = point.max_batch.max(batch);
                if batch > 1 {
                    point.batched += 1;
                }
                latencies.push(latency_s);
            }
            Outcome::Rejected => point.rejected += 1,
            Outcome::Failed(msg) => {
                point.failed += 1;
                eprintln!("request failed: {msg}");
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let elapsed = start.elapsed().as_secs_f64();
    point.throughput_rps = if elapsed > 0.0 {
        point.completed as f64 / elapsed
    } else {
        0.0
    };
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    point.p50_ms = percentile(&latencies, 0.50) * 1e3;
    point.p95_ms = percentile(&latencies, 0.95) * 1e3;
    point.p99_ms = percentile(&latencies, 0.99) * 1e3;
    point
}

fn point_value(p: &SweepPoint, duration_ms: u64) -> Value {
    let f = |x: f64| Value::Number(x);
    Value::Object(vec![
        ("rate".into(), f(p.rate)),
        ("duration_ms".into(), f(duration_ms as f64)),
        ("sent".into(), f(p.sent as f64)),
        ("completed".into(), f(p.completed as f64)),
        ("rejected".into(), f(p.rejected as f64)),
        ("failed".into(), f(p.failed as f64)),
        ("throughput_rps".into(), f(p.throughput_rps)),
        ("p50_ms".into(), f(p.p50_ms)),
        ("p95_ms".into(), f(p.p95_ms)),
        ("p99_ms".into(), f(p.p99_ms)),
        ("max_batch".into(), f(p.max_batch as f64)),
        ("batched".into(), f(p.batched as f64)),
    ])
}

fn main() {
    let args = parse_args();
    let mix: Vec<String> = args.mix.iter().map(|(m, w)| format!("{m}={w}")).collect();
    eprintln!(
        "loadgen: {} · mix [{}] · {} sweep point(s) × {} ms",
        args.addr,
        mix.join(","),
        args.rates.len(),
        args.duration_ms
    );

    let mut points = Vec::new();
    println!(
        "{:>8} {:>6} {:>9} {:>8} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "rate",
        "sent",
        "completed",
        "rejected",
        "failed",
        "thru(rps)",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "max_batch"
    );
    for (i, &rate) in args.rates.iter().enumerate() {
        let p = run_sweep_point(&args, rate, i);
        println!(
            "{:>8.1} {:>6} {:>9} {:>8} {:>6} {:>10.1} {:>8.2} {:>8.2} {:>8.2} {:>9}",
            p.rate,
            p.sent,
            p.completed,
            p.rejected,
            p.failed,
            p.throughput_rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.max_batch
        );
        points.push(p);
    }

    if args.shutdown {
        match Client::connect(&args.addr) {
            Ok(mut c) => {
                let _ = c.request(&Request::Shutdown);
            }
            Err(e) => eprintln!("shutdown request failed: {e}"),
        }
    }

    let failed: u64 = points.iter().map(|p| p.failed).sum();
    let completed: u64 = points.iter().map(|p| p.completed).sum();

    if let Some(path) = &args.summary {
        let summary = Value::Object(vec![
            (
                "sweep".into(),
                Value::Array(
                    points
                        .iter()
                        .map(|p| point_value(p, args.duration_ms))
                        .collect(),
                ),
            ),
            ("completed".into(), Value::Number(completed as f64)),
            ("failed".into(), Value::Number(failed as f64)),
        ]);
        let write = std::path::Path::new(path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| {
                let mut f = std::fs::File::create(path)?;
                writeln!(
                    f,
                    "{}",
                    serde_json::to_string_pretty(&summary).expect("summaries serialize")
                )
            });
        match write {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if completed == 0 {
        eprintln!("no requests completed");
        std::process::exit(1);
    }
    if args.fail_on_error && failed > 0 {
        eprintln!("{failed} request(s) failed");
        std::process::exit(1);
    }
}
