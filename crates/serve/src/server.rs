//! The service: accept loop → per-connection readers → bounded per-model
//! queues → round-robin batch scheduler → shared executor → responders.
//!
//! Threading model (all std): one accept thread, one reader thread per
//! connection, and one scheduler thread that forms and executes batches
//! on the shared [`ngb_exec::ParallelExecutor`] pool. Responses are
//! written through a mutex-guarded clone of the connection socket, so the
//! scheduler and the reader (which answers control ops and rejections
//! inline) never interleave partial lines.
//!
//! Graceful drain: `shutdown` (wire op or [`ServerHandle::shutdown`])
//! stops admission, the scheduler keeps dispatching until every admitted
//! request is answered, the worker pool is drained and stopped, and every
//! connection socket is closed so reader threads exit.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ngb_exec::{ParallelExecutor, ThreadPool};
use ngb_graph::Graph;
use ngb_models::ModelId;
use ngb_runtime::{GraphCache, GraphKey};
use serde_json::Value;

use crate::batching::{batched_inputs, effective_max_batch, model_by_alias, split_output};
use crate::protocol::{error_response, obj, ok_response, tensor_digest, Request};
use crate::ServeConfig;

/// Counter snapshot of a running (or finished) server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to a queue.
    pub accepted: u64,
    /// Requests answered with a result.
    pub completed: u64,
    /// Requests rejected by admission control (full queue or draining) —
    /// every one received an error response, none were dropped.
    pub rejected: u64,
    /// Malformed requests and execution failures.
    pub errors: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Largest batch actually formed.
    pub max_batch: usize,
}

impl ServeStats {
    fn to_value(self, extra: Vec<(&str, Value)>) -> Value {
        let mut fields = vec![
            ("accepted", Value::Number(self.accepted as f64)),
            ("completed", Value::Number(self.completed as f64)),
            ("rejected", Value::Number(self.rejected as f64)),
            ("errors", Value::Number(self.errors as f64)),
            ("batches", Value::Number(self.batches as f64)),
            ("max_batch", Value::Number(self.max_batch as f64)),
        ];
        fields.extend(extra);
        obj(fields)
    }
}

/// One admitted inference request waiting in a queue.
struct Pending {
    id: String,
    seed: u64,
    enqueued: Instant,
    reply: Responder,
}

/// Serialized write access to one connection socket.
#[derive(Clone)]
struct Responder {
    stream: Arc<Mutex<TcpStream>>,
}

impl Responder {
    fn send(&self, v: &Value) {
        let line = serde_json::to_string(v).expect("responses serialize");
        let mut s = self.stream.lock().expect("responder lock");
        // a vanished client is not a server error; the write just ends
        let _ = s.write_all(line.as_bytes());
        let _ = s.write_all(b"\n");
        let _ = s.flush();
    }
}

/// Queue state guarded by one mutex (scheduler + all readers).
struct Queues {
    by_model: Vec<(ModelId, VecDeque<Pending>)>,
    rr: usize,
    paused: bool,
    draining: bool,
    queued_total: usize,
}

impl Queues {
    fn queue_mut(&mut self, model: ModelId) -> &mut VecDeque<Pending> {
        if let Some(i) = self.by_model.iter().position(|(m, _)| *m == model) {
            &mut self.by_model[i].1
        } else {
            self.by_model.push((model, VecDeque::new()));
            &mut self.by_model.last_mut().expect("just pushed").1
        }
    }

    fn queue_len(&self, model: ModelId) -> usize {
        self.by_model
            .iter()
            .find(|(m, _)| *m == model)
            .map_or(0, |(_, q)| q.len())
    }
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    queues: Mutex<Queues>,
    work: Condvar,
    cache: GraphCache,
    executor: ParallelExecutor,
    pool: Arc<ThreadPool>,
    stats: Mutex<ServeStats>,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        {
            let mut q = self.queues.lock().expect("queue lock");
            if q.draining {
                return;
            }
            q.draining = true;
        }
        self.work.notify_all();
        // wake the accept loop so it observes the drain flag
        let _ = TcpStream::connect(self.addr);
    }
}

/// The inference service. [`Server::start`] binds, spawns the threads,
/// and returns a [`ServerHandle`].
pub struct Server;

/// A running server: address, counters, and shutdown/join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    sched: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the accept and scheduler threads, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(ThreadPool::new(config.effective_threads()));
        let mut executor = ParallelExecutor::with_pool(config.seed, Arc::clone(&pool));
        if let Some(on) = config.intra_op {
            executor = executor.intra_op(on);
        }
        let shared = Arc::new(Shared {
            config,
            addr,
            queues: Mutex::new(Queues {
                by_model: Vec::new(),
                rr: 0,
                paused: false,
                draining: false,
                queued_total: 0,
            }),
            work: Condvar::new(),
            cache: GraphCache::new(),
            executor,
            pool,
            stats: Mutex::new(ServeStats::default()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ngb-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        let sched = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ngb-serve-sched".into())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler thread")
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            sched: Some(sched),
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        *self.shared.stats.lock().expect("stats lock")
    }

    /// Initiates graceful drain (same as the wire `shutdown` op).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the drain to finish and returns the final counters.
    /// Call [`ServerHandle::shutdown`] (or send the wire op) first.
    pub fn join(mut self) -> ServeStats {
        if let Some(h) = self.sched.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stats()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.queues.lock().expect("queue lock").draining {
            return; // wake-up connection (or late client) — drop and exit
        }
        let Ok(stream) = stream else { continue };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conns lock")
                .insert(conn_id, clone);
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name(format!("ngb-serve-conn-{conn_id}"))
            .spawn(move || {
                connection_loop(stream, &shared);
                shared.conns.lock().expect("conns lock").remove(&conn_id);
            });
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let responder = Responder {
        stream: Arc::new(Mutex::new(write_half)),
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(msg) => {
                shared.stats.lock().expect("stats lock").errors += 1;
                responder.send(&error_response("", 400, &msg, None));
            }
            Ok(req) => handle_request(shared, &responder, req),
        }
    }
}

fn handle_request(shared: &Arc<Shared>, responder: &Responder, req: Request) {
    match req {
        Request::Infer { id, model, seed } => admit(shared, responder, id, &model, seed),
        Request::Ping => responder.send(&ok_response(vec![("pong", Value::Bool(true))])),
        Request::Stats => responder.send(&stats_response(shared)),
        Request::Pause => {
            shared.queues.lock().expect("queue lock").paused = true;
            shared.work.notify_all();
            responder.send(&ok_response(vec![("paused", Value::Bool(true))]));
        }
        Request::Resume => {
            shared.queues.lock().expect("queue lock").paused = false;
            shared.work.notify_all();
            responder.send(&ok_response(vec![("paused", Value::Bool(false))]));
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            responder.send(&ok_response(vec![("draining", Value::Bool(true))]));
        }
    }
}

/// Admission control: resolve the model, enforce the drain flag and the
/// per-model queue bound, and either enqueue or reject with an explicit
/// error response.
fn admit(shared: &Arc<Shared>, responder: &Responder, id: String, model: &str, seed: u64) {
    let Some(model_id) = model_by_alias(model) else {
        shared.stats.lock().expect("stats lock").errors += 1;
        responder.send(&error_response(
            &id,
            404,
            &format!("unknown model \"{model}\""),
            None,
        ));
        return;
    };
    let rejection = {
        let mut q = shared.queues.lock().expect("queue lock");
        if q.draining {
            Some(error_response(&id, 503, "shutting down", None))
        } else if q.queue_len(model_id) >= shared.config.queue_cap {
            let retry_ms = (shared.config.batch_wait.as_millis() as u64).max(1);
            Some(error_response(&id, 429, "queue full", Some(retry_ms)))
        } else {
            q.queue_mut(model_id).push_back(Pending {
                id,
                seed,
                enqueued: Instant::now(),
                reply: responder.clone(),
            });
            q.queued_total += 1;
            None
        }
    };
    let mut stats = shared.stats.lock().expect("stats lock");
    match rejection {
        Some(resp) => {
            stats.rejected += 1;
            drop(stats);
            responder.send(&resp);
        }
        None => {
            stats.accepted += 1;
            drop(stats);
            shared.work.notify_all();
        }
    }
}

fn stats_response(shared: &Arc<Shared>) -> Value {
    let stats = *shared.stats.lock().expect("stats lock");
    let (queued, paused, draining) = {
        let q = shared.queues.lock().expect("queue lock");
        (q.queued_total, q.paused, q.draining)
    };
    let cache = shared.cache.stats();
    let extra = vec![
        ("queued", Value::Number(queued as f64)),
        ("paused", Value::Bool(paused)),
        ("draining", Value::Bool(draining)),
        (
            "pool_queue_depth",
            Value::Number(shared.pool.queue_depth() as f64),
        ),
        (
            "pool_in_flight",
            Value::Number(shared.pool.in_flight() as f64),
        ),
        (
            "graph_cache",
            obj(vec![
                ("hits", Value::Number(cache.hits as f64)),
                ("misses", Value::Number(cache.misses as f64)),
                ("entries", Value::Number(cache.entries as f64)),
            ]),
        ),
    ];
    ok_response(vec![("stats", stats.to_value(extra))])
}

/// Round-robin scheduler: picks the next dispatchable model (full batch,
/// expired deadline, or draining), sleeps until the earliest deadline
/// otherwise, and exits once draining leaves every queue empty.
fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let Some((model, taken)) = next_batch(shared) else {
            break;
        };
        execute_batch(shared, model, taken);
    }
    // drain finished: quiesce the pool, then unblock every reader
    shared.pool.shutdown();
    for (_, stream) in shared.conns.lock().expect("conns lock").drain() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

fn next_batch(shared: &Arc<Shared>) -> Option<(ModelId, Vec<Pending>)> {
    let max_batch = shared.config.max_batch;
    let batch_wait = shared.config.batch_wait;
    let mut q = shared.queues.lock().expect("queue lock");
    loop {
        if q.draining && q.queued_total == 0 {
            return None;
        }
        // draining overrides pause: shutdown must always make progress
        if (!q.paused || q.draining) && q.queued_total > 0 {
            let now = Instant::now();
            let n = q.by_model.len();
            // round-robin scan for a dispatchable queue
            let mut pick = None;
            for i in 0..n {
                let idx = (q.rr + i) % n;
                let (model, queue) = &q.by_model[idx];
                if queue.is_empty() {
                    continue;
                }
                let cap = effective_max_batch(*model, max_batch);
                let due = queue.len() >= cap
                    || q.draining
                    || queue
                        .front()
                        .is_some_and(|p| p.enqueued + batch_wait <= now);
                if due {
                    pick = Some((idx, *model, cap));
                    break;
                }
            }
            if let Some((idx, model, cap)) = pick {
                q.rr = (idx + 1) % n;
                let queue = &mut q.by_model[idx].1;
                let take = queue.len().min(cap);
                let taken: Vec<Pending> = queue.drain(..take).collect();
                q.queued_total -= taken.len();
                return Some((model, taken));
            }
            // nothing due yet: sleep until the earliest pending deadline
            let earliest = q
                .by_model
                .iter()
                .filter_map(|(_, queue)| queue.front())
                .map(|p| p.enqueued + batch_wait)
                .min();
            if let Some(deadline) = earliest {
                let now = Instant::now();
                let wait = if deadline > now {
                    deadline - now
                } else {
                    Duration::ZERO
                };
                if !wait.is_zero() {
                    let (guard, _) = shared.work.wait_timeout(q, wait).expect("queue lock");
                    q = guard;
                }
                continue;
            }
        }
        q = shared.work.wait(q).expect("queue lock");
    }
}

/// Fetches (or builds) the optimized graph for one (model, batch) point.
fn cached_graph(
    shared: &Arc<Shared>,
    model: ModelId,
    batch: usize,
) -> Result<Arc<Graph>, ngb_tensor::TensorError> {
    let key = GraphKey {
        model: model.spec().alias.to_string(),
        scale: shared.config.scale.name().to_string(),
        opt_level: shared.config.opt_level.name().to_string(),
        batch,
    };
    shared.cache.get_or_build(&key, || {
        model
            .build(batch, shared.config.scale)
            .map(|g| ngb_opt::optimize(&g, shared.config.opt_level).0)
    })
}

fn execute_batch(shared: &Arc<Shared>, model: ModelId, taken: Vec<Pending>) {
    let batch = taken.len();
    let dispatched = Instant::now();
    let alias = model.spec().alias;

    let result = cached_graph(shared, model, 1).and_then(|solo| {
        let graph = if batch == 1 {
            Arc::clone(&solo)
        } else {
            cached_graph(shared, model, batch)?
        };
        let seeds: Vec<u64> = taken.iter().map(|p| p.seed).collect();
        let overrides = batched_inputs(&solo, &seeds)?;
        let t0 = Instant::now();
        let trace = shared.executor.run_with_inputs(&graph, &overrides)?;
        let exec = t0.elapsed();
        Ok((graph, trace, exec))
    });

    let (graph, trace, exec) = match result {
        Ok(r) => r,
        Err(e) => {
            let mut stats = shared.stats.lock().expect("stats lock");
            stats.errors += batch as u64;
            drop(stats);
            let msg = format!("execution failed: {e}");
            for p in &taken {
                p.reply.send(&error_response(&p.id, 500, &msg, None));
            }
            return;
        }
    };

    // split each output once, then assemble per-request records
    let mut rows: Vec<Vec<(ngb_graph::NodeId, ngb_tensor::Tensor)>> =
        (0..batch).map(|_| Vec::new()).collect();
    for (node, tensor) in &trace.outputs {
        if batch == 1 {
            rows[0].push((*node, tensor.clone()));
            continue;
        }
        match split_output(tensor, batch) {
            Ok(split) => {
                for (i, row) in split.into_iter().enumerate() {
                    rows[i].push((*node, row));
                }
            }
            Err(e) => {
                let mut stats = shared.stats.lock().expect("stats lock");
                stats.errors += batch as u64;
                drop(stats);
                let msg = format!("batch split failed: {e}");
                for p in &taken {
                    p.reply.send(&error_response(&p.id, 500, &msg, None));
                }
                return;
            }
        }
    }

    let breakdown =
        serde_json::to_value(ngb_profiler::breakdown_from_trace(&graph, &trace.timings))
            .unwrap_or(Value::Null);
    let exec_us = exec.as_micros() as f64;

    for (p, row) in taken.iter().zip(rows) {
        let queue_us = dispatched.duration_since(p.enqueued).as_micros() as f64;
        let outputs: Vec<Value> = row
            .iter()
            .map(|(node, tensor)| {
                obj(vec![
                    ("node", Value::Number(node.0 as f64)),
                    (
                        "shape",
                        Value::Array(
                            tensor
                                .shape()
                                .iter()
                                .map(|&d| Value::Number(d as f64))
                                .collect(),
                        ),
                    ),
                    ("digest", Value::String(tensor_digest(tensor))),
                ])
            })
            .collect();
        let record = obj(vec![
            ("batch_size", Value::Number(batch as f64)),
            ("queue_us", Value::Number(queue_us)),
            ("exec_us", Value::Number(exec_us)),
            ("outputs", Value::Array(outputs)),
            ("breakdown", breakdown.clone()),
        ]);
        p.reply.send(&ok_response(vec![
            ("id", Value::String(p.id.clone())),
            ("model", Value::String(alias.to_string())),
            ("result", record),
        ]));
    }

    let mut stats = shared.stats.lock().expect("stats lock");
    stats.completed += batch as u64;
    stats.batches += 1;
    stats.max_batch = stats.max_batch.max(batch);
}
