//! Wire protocol: line-delimited JSON request/response objects.
//!
//! One JSON object per line in each direction. Requests select an
//! operation with `"op"`:
//!
//! | op         | fields                          | reply                      |
//! |------------|---------------------------------|----------------------------|
//! | `infer`    | `model`, optional `id`, `seed`  | result record (async, after batching) |
//! | `ping`     |                                 | `{"ok":true,"pong":true}`  |
//! | `stats`    |                                 | server counters            |
//! | `pause`    |                                 | scheduler holds batches    |
//! | `resume`   |                                 | scheduler resumes          |
//! | `shutdown` |                                 | initiates graceful drain   |
//!
//! `pause`/`resume` gate batch dispatch without touching admission — they
//! exist so tests (and operators) can deterministically observe queue
//! buildup, full-queue rejection, and multi-request batch formation.
//!
//! Responses always carry `"ok"`. Failures carry an `"error"` object with
//! an HTTP-flavored `code` (400 bad request, 404 unknown model, 429 queue
//! full + `retry_after_ms`, 503 shutting down) — a rejected request is
//! *reported*, never silently dropped.
//!
//! These types deliberately stay `serde_json::Value`-based: the wire
//! format is the contract, and hand-rolled (de)serialization keeps it
//! independent of Rust-side struct layout.

use serde_json::Value;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one inference of `model`, inputs synthesized from `seed`.
    Infer {
        /// Client-chosen correlation id, echoed in the response.
        id: String,
        /// Model alias (e.g. `"bert"`).
        model: String,
        /// Input seed; defaults to the interpreter's default seed.
        seed: u64,
    },
    /// Liveness check.
    Ping,
    /// Server counter snapshot.
    Stats,
    /// Hold batch dispatch (admission continues).
    Pause,
    /// Resume batch dispatch.
    Resume,
    /// Begin graceful drain: stop admitting, finish everything queued.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing or
    /// unknown `op`, or a missing `model` on `infer`.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"op\" field".to_string())?;
        match op {
            "infer" => {
                let model = v
                    .get("model")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "infer requires a \"model\" field".to_string())?
                    .to_string();
                let id = v
                    .get("id")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(0x5eed);
                Ok(Request::Infer { id, model, seed })
            }
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "pause" => Ok(Request::Pause),
            "resume" => Ok(Request::Resume),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op \"{other}\"")),
        }
    }

    /// Serializes the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Infer { id, model, seed } => obj(vec![
                ("op", Value::String("infer".into())),
                ("id", Value::String(id.clone())),
                ("model", Value::String(model.clone())),
                ("seed", Value::Number(*seed as f64)),
            ]),
            Request::Ping => op_only("ping"),
            Request::Stats => op_only("stats"),
            Request::Pause => op_only("pause"),
            Request::Resume => op_only("resume"),
            Request::Shutdown => op_only("shutdown"),
        };
        serde_json::to_string(&v).expect("requests serialize")
    }
}

/// Builds a JSON object value from key/value pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn op_only(op: &str) -> Value {
    obj(vec![("op", Value::String(op.into()))])
}

/// A successful response envelope: `{"ok":true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Value)>) -> Value {
    let mut all = vec![("ok", Value::Bool(true))];
    all.extend(fields);
    obj(all)
}

/// An error response: `{"ok":false,"id":…,"error":{code,message[,retry_after_ms]}}`.
pub fn error_response(id: &str, code: u16, message: &str, retry_after_ms: Option<u64>) -> Value {
    let mut err = vec![
        ("code", Value::Number(f64::from(code))),
        ("message", Value::String(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        err.push(("retry_after_ms", Value::Number(ms as f64)));
    }
    obj(vec![
        ("ok", Value::Bool(false)),
        ("id", Value::String(id.to_string())),
        ("error", obj(err)),
    ])
}

/// FNV-1a hash over a tensor's dtype, shape, and exact bit pattern — the
/// response-side fingerprint that lets clients check bit-identity of
/// batched vs solo execution without shipping the tensor.
pub fn tensor_digest(t: &ngb_tensor::Tensor) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(t.shape().len() as u64);
    for &d in t.shape() {
        eat(d as u64);
    }
    let c = t.contiguous();
    match c.dtype() {
        ngb_tensor::DType::F32 => {
            eat(0);
            for x in c.to_vec_f32().expect("dtype checked") {
                eat(u64::from(x.to_bits()));
            }
        }
        ngb_tensor::DType::I64 => {
            eat(1);
            for x in c.to_vec_i64().expect("dtype checked") {
                eat(x as u64);
            }
        }
        ngb_tensor::DType::Bool => {
            eat(2);
            for x in c.to_vec_bool().expect("dtype checked") {
                eat(u64::from(x));
            }
        }
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_round_trips() {
        let r = Request::Infer {
            id: "r1".into(),
            model: "bert".into(),
            seed: 42,
        };
        assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn infer_defaults_seed_and_id() {
        let r = Request::parse(r#"{"op":"infer","model":"bert"}"#).unwrap();
        assert_eq!(
            r,
            Request::Infer {
                id: String::new(),
                model: "bert".into(),
                seed: 0x5eed,
            }
        );
    }

    #[test]
    fn control_ops_round_trip() {
        for r in [
            Request::Ping,
            Request::Stats,
            Request::Pause,
            Request::Resume,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"model":"bert"}"#).is_err());
        assert!(Request::parse(r#"{"op":"launch"}"#).is_err());
        assert!(Request::parse(r#"{"op":"infer"}"#).is_err());
    }

    #[test]
    fn error_response_shape() {
        let v = error_response("r9", 429, "queue full", Some(3));
        assert_eq!(v["ok"], false);
        assert_eq!(v["id"], "r9");
        assert_eq!(v["error"]["code"], 429u64);
        assert_eq!(v["error"]["retry_after_ms"], 3u64);
    }

    #[test]
    fn digest_is_sensitive_to_content_and_shape() {
        let a = ngb_tensor::Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = ngb_tensor::Tensor::from_vec(vec![1.0, 2.5], &[2]).unwrap();
        let c = ngb_tensor::Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        assert_ne!(tensor_digest(&a), tensor_digest(&b));
        assert_ne!(tensor_digest(&a), tensor_digest(&c));
        assert_eq!(tensor_digest(&a), tensor_digest(&a.clone()));
    }
}
