//! # ngb-serve
//!
//! A long-running inference service over the benchmark's executable
//! graphs — the serving layer that turns the paper's per-model profiles
//! into *observable* latency under queueing, batching, and concurrency.
//!
//! Requests travel as line-delimited JSON over plain TCP (std only, no
//! async runtime): each line in is one request object, each line out one
//! response object (see [`protocol`]). The server keeps one bounded FIFO
//! per model, forms dynamic batches up to `max_batch` or until the oldest
//! request's `batch_wait` deadline fires, schedules models fair
//! round-robin, and executes batches on one shared [`ngb_exec`] worker
//! pool. Built-and-optimized graphs are memoized per (model, scale,
//! opt-level, batch) in an [`ngb_runtime::GraphCache`], so steady state
//! pays no graph construction.
//!
//! Admission control is explicit: a full queue *rejects* with a
//! 429-style error carrying `retry_after_ms` (never silently drops), and
//! a draining server rejects with 503 while every already-admitted
//! request still completes. Each successful response carries a
//! per-request profile record — queue wait, batch size, execution time,
//! and the paper's taxonomy breakdown — so batching efficacy is
//! observable per request, not just in aggregate.
//!
//! Determinism: inputs are synthesized from the request's `seed` through
//! the interpreter's own per-node RNG ([`ngb_exec::synth_input`]), and
//! for batch-transparent models (see [`batching`]) a batched row is
//! bit-identical to a solo batch-1 run of the same seed. The wire digest
//! of every output tensor makes that checkable end to end.

#![forbid(unsafe_code)]

pub mod batching;
pub mod client;
pub mod protocol;
mod server;

pub use client::Client;
pub use server::{ServeStats, Server, ServerHandle};

use std::time::Duration;

use ngb_models::Scale;
use ngb_opt::OptLevel;

/// Default TCP listen address (port 0 = ephemeral, printed at startup).
pub const DEFAULT_ADDR: &str = "127.0.0.1:0";
/// Default cap on dynamically formed batches.
pub const DEFAULT_MAX_BATCH: usize = 8;
/// Default batching deadline: how long the oldest queued request may wait
/// for companions before its batch is dispatched anyway.
pub const DEFAULT_BATCH_WAIT_US: u64 = 2_000;
/// Default per-model queue capacity (admission control bound).
pub const DEFAULT_QUEUE_CAP: usize = 64;

/// Server configuration. `Default` reads the `NGB_SERVE_*` environment
/// overrides, falling back to the crate's `DEFAULT_*` constants.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address, e.g. `"127.0.0.1:7077"`.
    pub addr: String,
    /// Model scale served by this process.
    pub scale: Scale,
    /// Graph-rewrite level applied at build time.
    pub opt_level: OptLevel,
    /// Maximum dynamic batch size (≥ 1).
    pub max_batch: usize,
    /// Batching deadline for the oldest request in a queue.
    pub batch_wait: Duration,
    /// Per-model queue capacity; 0 rejects every request (useful as an
    /// admission-control drill).
    pub queue_cap: usize,
    /// Worker threads of the shared execution pool (0 = `NGB_THREADS`
    /// or 1).
    pub threads: usize,
    /// Intra-op parallelism override (`None` = `NGB_INTRAOP` default).
    pub intra_op: Option<bool>,
    /// Weight seed of the served graphs (requests carry their own input
    /// seeds; this one fixes the model parameters).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: env_string("NGB_SERVE_ADDR", DEFAULT_ADDR),
            scale: Scale::Full,
            opt_level: OptLevel::from_env(),
            max_batch: env_usize("NGB_SERVE_MAX_BATCH", DEFAULT_MAX_BATCH).max(1),
            batch_wait: Duration::from_micros(env_u64(
                "NGB_SERVE_BATCH_WAIT_US",
                DEFAULT_BATCH_WAIT_US,
            )),
            queue_cap: env_usize("NGB_SERVE_QUEUE_CAP", DEFAULT_QUEUE_CAP),
            threads: 0,
            intra_op: None,
            seed: 0x5eed,
        }
    }
}

impl ServeConfig {
    /// Worker threads after applying the `NGB_THREADS` fallback.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            ngb_exec::env_threads(1)
        } else {
            self.threads
        }
    }
}

fn env_string(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
