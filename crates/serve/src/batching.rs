//! Dynamic-batch formation: which models batch, and how inputs/outputs
//! map between a batch-B graph and its per-request batch-1 rows.
//!
//! The graph builders parameterize batch size, node ids are stable across
//! batch sizes, and input RNG is keyed on node id — so a batch is formed
//! by synthesizing each request's batch-1 inputs ([`ngb_exec::synth_input`]
//! with the request seed), concatenating them along dim 0, and running the
//! cached batch-B graph once. Outputs split back with `narrow(0, i, 1)`.
//!
//! Not every model is **batch-transparent** (batched row bit-identical to
//! a solo batch-1 run). Three classes fall out, established empirically by
//! `tests/serve.rs` and the sweep this table was derived from:
//!
//! * transparent — convnets/Swin/SegFormer/BERT: reductions and GEMM
//!   blocking never mix rows, so rows are bit-exact;
//! * row-mixing numerics — ViT and the GPT/Llama family: results stay
//!   *correct* but the GEMM micro-kernel's row-block (MR=4) tail handling
//!   straddles example boundaries at some shapes, so rows are not
//!   bit-exact. Serving batches anyway would silently break the
//!   bit-identity contract, so these execute at batch 1;
//! * non-splittable — detection/panoptic models: dynamic ops (NMS) or
//!   outputs whose leading dim is not the batch make per-request rows
//!   unrecoverable; always batch 1.

use std::collections::HashMap;

use ngb_exec::synth_input;
use ngb_graph::{Graph, NodeId, OpKind};
use ngb_models::ModelId;
use ngb_tensor::{Tensor, TensorError};

/// Models whose batched rows are bit-identical to solo batch-1 runs.
/// Everything not listed serves at effective batch 1 (see module docs).
pub const BATCH_TRANSPARENT: &[ModelId] = &[
    ModelId::ResNet50,
    ModelId::MobileNetV2,
    ModelId::SwinTiny,
    ModelId::SwinSmall,
    ModelId::SwinBase,
    ModelId::Segformer,
    ModelId::Bert,
];

/// Whether `model` may be served in dynamic batches larger than 1.
pub fn batch_transparent(model: ModelId) -> bool {
    BATCH_TRANSPARENT.contains(&model)
}

/// The largest batch the scheduler may form for `model` under a
/// configured cap.
pub fn effective_max_batch(model: ModelId, max_batch: usize) -> usize {
    if batch_transparent(model) {
        max_batch.max(1)
    } else {
        1
    }
}

/// Synthesizes the batched input overrides for `batch_graph` from one
/// seed per request: per-request tensors come from the batch-1 graph's
/// input nodes (same node ids), concatenated along dim 0.
///
/// # Errors
///
/// Propagates `cat` failures (cannot happen for same-structure graphs).
pub fn batched_inputs(
    solo_graph: &Graph,
    seeds: &[u64],
) -> Result<HashMap<NodeId, Tensor>, TensorError> {
    let mut overrides = HashMap::new();
    for node in solo_graph.iter() {
        if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) {
            let parts: Vec<Tensor> = seeds.iter().map(|&s| synth_input(s, node)).collect();
            let joined = if parts.len() == 1 {
                parts.into_iter().next().expect("one part")
            } else {
                Tensor::cat(&parts, 0)?
            };
            overrides.insert(node.id, joined);
        }
    }
    Ok(overrides)
}

/// Splits one batched output tensor into its per-request rows (dense
/// copies, so the batch buffer is released).
///
/// # Errors
///
/// Fails when the leading dimension is not the batch size.
pub fn split_output(out: &Tensor, batch: usize) -> Result<Vec<Tensor>, TensorError> {
    if out.shape().first() != Some(&batch) {
        return Err(TensorError::InvalidArgument(format!(
            "output shape {:?} does not split into batch {batch}",
            out.shape()
        )));
    }
    (0..batch)
        .map(|i| Ok(out.narrow(0, i, 1)?.contiguous()))
        .collect()
}

/// Looks up a model by its registry alias.
pub fn model_by_alias(alias: &str) -> Option<ModelId> {
    ModelId::all()
        .iter()
        .copied()
        .find(|m| m.spec().alias == alias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_models::Scale;

    #[test]
    fn transparency_policy_caps_non_transparent_models_at_one() {
        assert_eq!(effective_max_batch(ModelId::Bert, 8), 8);
        assert_eq!(effective_max_batch(ModelId::Gpt2, 8), 1);
        assert_eq!(effective_max_batch(ModelId::FasterRcnn, 8), 1);
        assert_eq!(effective_max_batch(ModelId::Bert, 0), 1);
    }

    #[test]
    fn alias_lookup_round_trips() {
        for &m in ModelId::all() {
            assert_eq!(model_by_alias(m.spec().alias), Some(m));
        }
        assert_eq!(model_by_alias("nonesuch"), None);
    }

    #[test]
    fn batched_inputs_stack_per_request_rows() {
        let g1 = ModelId::Bert.build(1, Scale::Tiny).unwrap();
        let seeds = [1u64, 2, 3];
        let overrides = batched_inputs(&g1, &seeds).unwrap();
        assert!(!overrides.is_empty());
        for (id, t) in &overrides {
            let n = g1.node(*id);
            assert_eq!(t.shape()[0], seeds.len() * n.out_shape[0]);
            // row i must be exactly the solo synthesis for seed i
            for (i, &s) in seeds.iter().enumerate() {
                let row = t.narrow(0, i, 1).unwrap().contiguous();
                assert_eq!(row, synth_input(s, n));
            }
        }
    }

    #[test]
    fn split_output_rejects_wrong_leading_dim() {
        let t = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        assert_eq!(split_output(&t, 2).unwrap().len(), 2);
        assert!(split_output(&t, 3).is_err());
    }
}
