//! A minimal blocking client for the line-delimited JSON protocol —
//! shared by the `loadgen` binary and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde_json::Value;

use crate::protocol::Request;

/// One connection to a server. Requests and responses are line-oriented;
/// [`Client::request`] is the simple one-in-one-out path, while
/// [`Client::send`]/[`Client::recv`] let callers pipeline several infer
/// requests before reading (responses carry the request `id` for
/// correlation).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request line without waiting for the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        let line = req.to_line();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// Fails on EOF (server closed the connection) or malformed JSON.
    pub fn recv(&mut self) -> std::io::Result<Value> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e}")))
    }

    /// Sends one request and waits for one response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Value> {
        self.send(req)?;
        self.recv()
    }

    /// One inference round trip.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn infer(&mut self, model: &str, id: &str, seed: u64) -> std::io::Result<Value> {
        self.request(&Request::Infer {
            id: id.to_string(),
            model: model.to_string(),
            seed,
        })
    }

    /// Requests the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.request(&Request::Stats)
    }

    /// Initiates graceful shutdown.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.request(&Request::Shutdown)
    }
}
