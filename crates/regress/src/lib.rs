//! # ngb-regress
//!
//! The perf-regression gate behind `nongemm-cli ci`: committed golden
//! baselines that pin down every number the reproduction exists to
//! produce, so a rewrite pass or scheduler change can never silently
//! skew a figure again.
//!
//! For each of the 18 Table 1 models the gate snapshots the full
//! **scale × opt-level matrix** (tiny + full, O0/O1/O2) of
//! *deterministic* invariants:
//!
//! * **graph** — node counts, GEMM/non-GEMM taxonomy census, dynamic-op
//!   count, parameter count, peak activation bytes, and the static bytes
//!   still materialized by `Contiguous` nodes after elision;
//! * **cost** — analytic GEMM / non-GEMM / per-group latency totals and
//!   the non-GEMM share on the reference platform (data-center, eager,
//!   GPU, batch 1) — pure f64 arithmetic, bit-stable across runs;
//! * **schedule** — Kahn wavefront depth and widths;
//! * **lints** — deny/warn/allow counts from the `ngb-analyze` passes;
//! * **opt** — the rewriter's node-reduction delta and per-rewrite
//!   counters.
//!
//! On top of that rides one *measured* channel: a median-of-k wall-clock
//! smoke sample of the tiny preset, compared against a generous relative
//! threshold ([`Tolerance::wallclock_factor`], `NGB_WALLCLOCK_FACTOR`)
//! and skippable outright with `NGB_NO_WALLCLOCK=1` — single-core CI
//! containers are too noisy for anything stricter, as the edge-latency
//! prediction literature repeatedly observes.
//!
//! Baselines live as one versioned JSON file per model under
//! `baselines/` ([`SCHEMA_VERSION`]); a version mismatch is a clear
//! "regenerate with `nongemm-cli ci --update`" failure, never a parse
//! panic. [`check`] produces a [`CheckOutcome`] whose text and JSON
//! renderings name the exact model and metric that moved; [`update`]
//! rewrites the files and summarizes what changed, turning every
//! perf/optimizer PR into a reviewable baseline diff.
//!
//! # Examples
//!
//! ```
//! use ngb_regress::{snapshot, SCHEMA_VERSION};
//! use ngb_models::{ModelId, Scale};
//! use ngb_opt::OptLevel;
//!
//! let a = snapshot(ModelId::Gpt2, Scale::Tiny, OptLevel::O1).unwrap();
//! let b = snapshot(ModelId::Gpt2, Scale::Tiny, OptLevel::O1).unwrap();
//! assert_eq!(a, b); // snapshots are deterministic
//! assert!(a.cost.total_us > 0.0);
//! assert_eq!(SCHEMA_VERSION, 4);
//! ```

#![forbid(unsafe_code)]

mod baseline;
mod diff;
mod gate;
mod report;
mod snapshot;

pub use baseline::{
    baseline_path, bench_entry, load_baseline, update_bench_seed, write_baseline, BenchEntry,
    BenchSeed, RegressError,
};
pub use diff::{compare_model, MetricDiff, Tolerance};
pub use gate::{
    check, measure_wallclock, refresh_bench_seed, update, wallclock_disabled_by_env, GateConfig,
    DEFAULT_WALLCLOCK_ITERS,
};
pub use report::{CheckOutcome, ModelUpdate, UpdateOutcome};
pub use snapshot::{
    model_baseline, snapshot, wallclock_median_us, CostMetrics, GraphMetrics, LintMetrics,
    ModelBaseline, OptMetrics, ScheduleMetrics, Snapshot, WallClock, OPT_LEVELS, SCALES,
    SCHEMA_VERSION,
};
