//! The gate runners behind `nongemm-cli ci`: `check` diffs the current
//! tree against the committed baselines, `update` regenerates them.

use std::path::PathBuf;

use ngb_models::ModelId;

use crate::baseline::{
    baseline_path, bench_entry, load_baseline, update_bench_seed, write_baseline, RegressError,
};
use crate::diff::{compare_model, MetricDiff, Tolerance};
use crate::report::{CheckOutcome, ModelUpdate, UpdateOutcome};
use crate::snapshot::{model_baseline, wallclock_median_us, ModelBaseline};

/// Default number of wall-clock samples per model.
pub const DEFAULT_WALLCLOCK_ITERS: usize = 5;

/// Configuration of one gate run.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Baseline directory (normally `baselines/` at the repo root).
    pub dir: PathBuf,
    /// Models to gate.
    pub models: Vec<ModelId>,
    /// Wall-clock samples per model; `None` disables the channel
    /// (`NGB_NO_WALLCLOCK`).
    pub wallclock_iters: Option<usize>,
    /// Comparison policy.
    pub tolerance: Tolerance,
}

impl GateConfig {
    /// A gate over `dir` and all 18 models, honoring `NGB_NO_WALLCLOCK`
    /// and `NGB_WALLCLOCK_FACTOR`.
    pub fn new(dir: impl Into<PathBuf>) -> GateConfig {
        GateConfig {
            dir: dir.into(),
            models: ModelId::all().to_vec(),
            wallclock_iters: if wallclock_disabled_by_env() {
                None
            } else {
                Some(DEFAULT_WALLCLOCK_ITERS)
            },
            tolerance: Tolerance::from_env(),
        }
    }
}

/// Whether `NGB_NO_WALLCLOCK` requests skipping the measured channel
/// (any non-empty value other than `0`).
pub fn wallclock_disabled_by_env() -> bool {
    std::env::var("NGB_NO_WALLCLOCK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

fn build_current(
    cfg: &GateConfig,
    id: ModelId,
    with_wallclock: bool,
) -> Result<ModelBaseline, RegressError> {
    let iters = if with_wallclock {
        cfg.wallclock_iters
    } else {
        None
    };
    model_baseline(id, iters).map_err(|e| RegressError::Build {
        model: id.spec().alias.to_string(),
        msg: e.to_string(),
    })
}

/// Runs the check gate: snapshots every configured model and diffs it
/// against its committed baseline. A missing or schema-mismatched
/// baseline file is reported as a diff (context `"baseline"`) rather
/// than an error, so one stale file fails the gate with an actionable
/// message instead of aborting it.
///
/// The wall-clock channel is measured only for models whose baseline
/// carries a sample and only when the config enables it — so checks
/// under `NGB_NO_WALLCLOCK=1` never execute graphs at all.
///
/// # Errors
///
/// [`RegressError::Build`] when a current snapshot cannot be built
/// (graph construction itself is broken — that is a hard failure, not a
/// diff).
pub fn check(cfg: &GateConfig) -> Result<CheckOutcome, RegressError> {
    let mut diffs: Vec<MetricDiff> = Vec::new();
    let mut models = Vec::with_capacity(cfg.models.len());
    let mut wallclock_checked = false;
    for &id in &cfg.models {
        let alias = id.spec().alias.to_string();
        models.push(alias.clone());
        let path = baseline_path(&cfg.dir, &alias);
        let baseline = match load_baseline(&path) {
            Ok(b) => b,
            Err(e) => {
                diffs.push(MetricDiff {
                    model: alias,
                    context: "baseline".to_string(),
                    metric: "file".to_string(),
                    baseline: e.to_string(),
                    current: "run `nongemm-cli ci --update`".to_string(),
                });
                continue;
            }
        };
        let measure = baseline.wallclock.is_some() && cfg.wallclock_iters.is_some();
        wallclock_checked |= measure;
        let current = build_current(cfg, id, measure)?;
        diffs.extend(compare_model(&baseline, &current, &cfg.tolerance));
    }
    Ok(CheckOutcome {
        models,
        diffs,
        wallclock_checked,
    })
}

/// Runs the update gate: regenerates every configured model's baseline
/// file, reporting what moved relative to the previous files. Old files
/// that are missing, malformed, or schema-mismatched are silently
/// replaced (that is the point of `--update`).
///
/// # Errors
///
/// [`RegressError::Build`] when a snapshot cannot be built,
/// [`RegressError::Io`] when a file cannot be written.
pub fn update(cfg: &GateConfig) -> Result<UpdateOutcome, RegressError> {
    let mut written = Vec::with_capacity(cfg.models.len());
    for &id in &cfg.models {
        let current = build_current(cfg, id, true)?;
        let path = baseline_path(&cfg.dir, &current.model);
        let previous = load_baseline(&path).ok();
        let moved = previous
            .as_ref()
            .map(|prev| compare_model(prev, &current, &cfg.tolerance))
            .unwrap_or_default();
        write_baseline(&path, &current)?;
        written.push(ModelUpdate {
            model: current.model.clone(),
            created: previous.is_none(),
            moved,
        });
    }
    Ok(UpdateOutcome { written })
}

/// Refreshes the repo-root bench seed from freshly written baselines:
/// every configured model's full-scale O0 cost totals are merged into
/// `bench_path` (other models' rows are preserved).
///
/// # Errors
///
/// Propagates [`RegressError::Io`] / [`RegressError::Parse`] /
/// [`RegressError::Schema`] from reading the baselines just written.
pub fn refresh_bench_seed(
    cfg: &GateConfig,
    bench_path: &std::path::Path,
) -> Result<usize, RegressError> {
    let mut entries = Vec::with_capacity(cfg.models.len());
    for &id in &cfg.models {
        let alias = id.spec().alias.to_string();
        let baseline = load_baseline(&baseline_path(&cfg.dir, &alias))?;
        if let Some(snap) = baseline.snapshot("full", ngb_opt::OptLevel::O0) {
            entries.push((alias, bench_entry(snap)));
        }
    }
    let count = entries.len();
    update_bench_seed(bench_path, entries)?;
    Ok(count)
}

/// Re-measures only the wall-clock channel for `id` (used by tests and
/// diagnostics; the gate itself goes through [`check`]/[`update`]).
///
/// # Errors
///
/// [`RegressError::Build`] when execution fails.
pub fn measure_wallclock(id: ModelId, iters: usize) -> Result<f64, RegressError> {
    wallclock_median_us(id, iters)
        .map(|w| w.median_us)
        .map_err(|e| RegressError::Build {
            model: id.spec().alias.to_string(),
            msg: e.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .subsec_nanos();
        let dir =
            std::env::temp_dir().join(format!("ngb-gate-{tag}-{}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn small_cfg(dir: PathBuf) -> GateConfig {
        GateConfig {
            dir,
            models: vec![ModelId::Gpt2],
            wallclock_iters: None,
            tolerance: Tolerance::default(),
        }
    }

    #[test]
    fn update_then_check_is_clean() {
        let dir = tmpdir("clean");
        let cfg = small_cfg(dir.clone());
        let up = update(&cfg).unwrap();
        assert_eq!(up.written.len(), 1);
        assert!(up.written[0].created);
        let out = check(&cfg).unwrap();
        assert!(out.is_clean(), "{}", out.to_text());
        assert!(!out.wallclock_checked, "no iters configured");
        // an unchanged re-update reports nothing moved
        let up2 = update(&cfg).unwrap();
        assert!(!up2.written[0].created);
        assert!(up2.written[0].moved.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_baseline_fails_with_actionable_diff() {
        let dir = tmpdir("missing");
        let cfg = small_cfg(dir.clone());
        let out = check(&cfg).unwrap();
        assert!(!out.is_clean());
        assert_eq!(out.diffs[0].model, "gpt2");
        assert_eq!(out.diffs[0].context, "baseline");
        assert!(out.diffs[0].current.contains("--update"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_schema_fails_the_gate_without_aborting_it() {
        let dir = tmpdir("stale");
        let cfg = small_cfg(dir.clone());
        std::fs::write(
            baseline_path(&cfg.dir, "gpt2"),
            "{\"schema\": 0, \"model\": \"gpt2\"}",
        )
        .unwrap();
        let out = check(&cfg).unwrap();
        assert!(!out.is_clean());
        assert!(out.diffs[0].baseline.contains("schema v0"));
        assert!(out.diffs[0].baseline.contains("--update"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_seed_refresh_covers_selected_models() {
        let dir = tmpdir("bench");
        let cfg = small_cfg(dir.clone());
        update(&cfg).unwrap();
        let bench = dir.join("BENCH_BASELINE.json");
        let n = refresh_bench_seed(&cfg, &bench).unwrap();
        assert_eq!(n, 1);
        let text = std::fs::read_to_string(&bench).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(v["models"]["gpt2"]["total_us"].as_f64().unwrap() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
