//! Human-readable and JSON renderings of a regression-gate run.

use serde::Serialize;

use crate::diff::MetricDiff;

/// Result of `nongemm-cli ci --check`: one status line per model plus
/// every metric divergence found.
#[derive(Debug, Clone, Serialize)]
pub struct CheckOutcome {
    /// Models checked, in selection order.
    pub models: Vec<String>,
    /// Every divergence, grouped by model in selection order.
    pub diffs: Vec<MetricDiff>,
    /// Whether the wall-clock channel ran (false under
    /// `NGB_NO_WALLCLOCK` or when baselines carry no sample).
    pub wallclock_checked: bool,
}

impl CheckOutcome {
    /// A check passes when nothing diverged.
    pub fn is_clean(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Models with at least one divergence, in selection order.
    pub fn failed_models(&self) -> Vec<&str> {
        self.models
            .iter()
            .filter(|m| self.diffs.iter().any(|d| &d.model == *m))
            .map(String::as_str)
            .collect()
    }

    /// The per-model / per-metric text report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "regression check: {} model(s), wallclock {}",
            self.models.len(),
            if self.wallclock_checked {
                "checked"
            } else {
                "skipped"
            }
        );
        for model in &self.models {
            let diffs: Vec<&MetricDiff> = self.diffs.iter().filter(|d| &d.model == model).collect();
            if diffs.is_empty() {
                let _ = writeln!(out, "  ok   {model}");
            } else {
                let _ = writeln!(out, "  FAIL {model} ({} metric(s))", diffs.len());
                for d in diffs {
                    let _ = writeln!(
                        out,
                        "         {} {}: baseline {} -> current {}",
                        d.context, d.metric, d.baseline, d.current
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "result: {}",
            if self.is_clean() {
                "PASS".to_string()
            } else {
                format!(
                    "FAIL ({} diff(s) across {} model(s); if intended, \
                     regenerate with `nongemm-cli ci --update`)",
                    self.diffs.len(),
                    self.failed_models().len()
                )
            }
        );
        out
    }

    /// The machine-readable report (what `--report` writes for CI
    /// artifacts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&JsonReport {
            clean: self.is_clean(),
            models_checked: self.models.len(),
            models_failed: self.failed_models().iter().map(|s| s.to_string()).collect(),
            wallclock_checked: self.wallclock_checked,
            diffs: self.diffs.clone(),
        })
        .expect("reports serialize")
    }
}

/// Serialization shape of [`CheckOutcome::to_json`].
#[derive(Serialize)]
struct JsonReport {
    clean: bool,
    models_checked: usize,
    models_failed: Vec<String>,
    wallclock_checked: bool,
    diffs: Vec<MetricDiff>,
}

/// Result of `nongemm-cli ci --update`: what moved per rewritten model.
#[derive(Debug, Clone, Serialize)]
pub struct UpdateOutcome {
    /// Per-model update summaries, in selection order.
    pub written: Vec<ModelUpdate>,
}

/// One rewritten baseline file.
#[derive(Debug, Clone, Serialize)]
pub struct ModelUpdate {
    /// Model alias.
    pub model: String,
    /// True when no (readable, current-schema) baseline existed before.
    pub created: bool,
    /// Metrics that moved relative to the previous file (empty for
    /// `created` files or no-op refreshes).
    pub moved: Vec<MetricDiff>,
}

impl UpdateOutcome {
    /// The what-moved text summary printed after `--update`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "baselines updated: {} model(s)", self.written.len());
        for w in &self.written {
            if w.created {
                let _ = writeln!(out, "  new  {}", w.model);
            } else if w.moved.is_empty() {
                let _ = writeln!(out, "  same {}", w.model);
            } else {
                let _ = writeln!(out, "  moved {} ({} metric(s))", w.model, w.moved.len());
                for d in &w.moved {
                    let _ = writeln!(
                        out,
                        "         {} {}: {} -> {}",
                        d.context, d.metric, d.baseline, d.current
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(diffs: Vec<MetricDiff>) -> CheckOutcome {
        CheckOutcome {
            models: vec!["gpt2".into(), "bert".into()],
            diffs,
            wallclock_checked: false,
        }
    }

    fn one_diff() -> MetricDiff {
        MetricDiff {
            model: "gpt2".into(),
            context: "tiny/O1".into(),
            metric: "cost.gemm_us".into(),
            baseline: "10".into(),
            current: "20".into(),
        }
    }

    #[test]
    fn clean_check_renders_pass() {
        let o = outcome(Vec::new());
        assert!(o.is_clean());
        let text = o.to_text();
        assert!(text.contains("ok   gpt2"));
        assert!(text.contains("result: PASS"));
        let v: serde_json::Value = serde_json::from_str(&o.to_json()).unwrap();
        assert_eq!(v["clean"], true);
        assert_eq!(v["models_checked"], 2.0);
    }

    #[test]
    fn failing_check_names_model_and_metric() {
        let o = outcome(vec![one_diff()]);
        assert!(!o.is_clean());
        assert_eq!(o.failed_models(), vec!["gpt2"]);
        let text = o.to_text();
        assert!(text.contains("FAIL gpt2"));
        assert!(text.contains("tiny/O1 cost.gemm_us"));
        assert!(text.contains("--update"), "fail text names the remedy");
        let v: serde_json::Value = serde_json::from_str(&o.to_json()).unwrap();
        assert_eq!(v["clean"], false);
        assert_eq!(v["diffs"][0]["metric"], "cost.gemm_us");
        assert_eq!(v["models_failed"][0], "gpt2");
    }

    #[test]
    fn update_summary_lists_created_and_moved() {
        let u = UpdateOutcome {
            written: vec![
                ModelUpdate {
                    model: "gpt2".into(),
                    created: true,
                    moved: Vec::new(),
                },
                ModelUpdate {
                    model: "bert".into(),
                    created: false,
                    moved: vec![one_diff()],
                },
            ],
        };
        let text = u.to_text();
        assert!(text.contains("new  gpt2"));
        assert!(text.contains("moved bert"));
        assert!(text.contains("cost.gemm_us"));
    }
}
