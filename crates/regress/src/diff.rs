//! Baseline comparison: the tolerance policy and the per-metric diff
//! engine behind `nongemm-cli ci --check`.

use std::collections::BTreeSet;

use serde::Serialize;

use crate::snapshot::{ModelBaseline, Snapshot};

/// Comparison policy. Counts are always exact; this only parameterizes
/// the two float channels.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance for deterministic floats (cost totals, mean
    /// widths). The analytic cost model is pure f64 arithmetic and the
    /// JSON encoding round-trips exactly, so this only needs to absorb
    /// benign refactors of summation order; default `1e-9`.
    pub rel: f64,
    /// Generous slow-down factor for the measured wall-clock channel: the
    /// check fails only when the current median exceeds
    /// `baseline * wallclock_factor`. Default `10.0`; override with
    /// `NGB_WALLCLOCK_FACTOR` for noisier hosts.
    pub wallclock_factor: f64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            rel: 1e-9,
            wallclock_factor: 10.0,
        }
    }
}

impl Tolerance {
    /// The default policy with `NGB_WALLCLOCK_FACTOR` applied when set to
    /// a finite value `>= 1`.
    pub fn from_env() -> Tolerance {
        let mut tol = Tolerance::default();
        if let Some(f) = std::env::var("NGB_WALLCLOCK_FACTOR")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|f| f.is_finite() && *f >= 1.0)
        {
            tol.wallclock_factor = f;
        }
        tol
    }

    fn floats_equal(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.rel * a.abs().max(b.abs()).max(1.0)
    }
}

/// One divergence between a baseline and the current tree.
#[derive(Debug, Clone, Serialize)]
pub struct MetricDiff {
    /// Model alias.
    pub model: String,
    /// Snapshot cell (`"tiny/O1"`), `"wallclock"`, or `"baseline"` for
    /// file-level problems.
    pub context: String,
    /// Dotted metric path (`"cost.gemm_us"`, `"graph.nodes"`, ...).
    pub metric: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
}

impl std::fmt::Display for MetricDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {}: baseline {} -> current {}",
            self.model, self.context, self.metric, self.baseline, self.current
        )
    }
}

/// Accumulates diffs for one (model, context) cell.
struct DiffSink<'a> {
    model: &'a str,
    context: String,
    out: &'a mut Vec<MetricDiff>,
}

impl DiffSink<'_> {
    fn push(&mut self, metric: &str, baseline: impl ToString, current: impl ToString) {
        self.out.push(MetricDiff {
            model: self.model.to_string(),
            context: self.context.clone(),
            metric: metric.to_string(),
            baseline: baseline.to_string(),
            current: current.to_string(),
        });
    }

    fn count(&mut self, metric: &str, baseline: usize, current: usize) {
        if baseline != current {
            self.push(metric, baseline, current);
        }
    }

    fn flag(&mut self, metric: &str, baseline: bool, current: bool) {
        if baseline != current {
            self.push(metric, baseline, current);
        }
    }

    fn float(&mut self, tol: &Tolerance, metric: &str, baseline: f64, current: f64) {
        if !tol.floats_equal(baseline, current) {
            self.push(metric, baseline, current);
        }
    }

    /// Compares keyed maps over the union of keys, reporting absent
    /// entries as `"absent"`.
    fn count_map(
        &mut self,
        prefix: &str,
        baseline: &std::collections::BTreeMap<String, usize>,
        current: &std::collections::BTreeMap<String, usize>,
    ) {
        let keys: BTreeSet<&String> = baseline.keys().chain(current.keys()).collect();
        for key in keys {
            let metric = format!("{prefix}.{key}");
            match (baseline.get(key), current.get(key)) {
                (Some(&b), Some(&c)) => self.count(&metric, b, c),
                (Some(&b), None) => self.push(&metric, b, "absent"),
                (None, Some(&c)) => self.push(&metric, "absent", c),
                (None, None) => unreachable!("key came from one of the maps"),
            }
        }
    }

    fn float_map(
        &mut self,
        tol: &Tolerance,
        prefix: &str,
        baseline: &std::collections::BTreeMap<String, f64>,
        current: &std::collections::BTreeMap<String, f64>,
    ) {
        let keys: BTreeSet<&String> = baseline.keys().chain(current.keys()).collect();
        for key in keys {
            let metric = format!("{prefix}.{key}");
            match (baseline.get(key), current.get(key)) {
                (Some(&b), Some(&c)) => self.float(tol, &metric, b, c),
                (Some(&b), None) => self.push(&metric, b, "absent"),
                (None, Some(&c)) => self.push(&metric, "absent", c),
                (None, None) => unreachable!("key came from one of the maps"),
            }
        }
    }
}

fn compare_snapshot(
    model: &str,
    tol: &Tolerance,
    baseline: &Snapshot,
    current: &Snapshot,
    out: &mut Vec<MetricDiff>,
) {
    let mut sink = DiffSink {
        model,
        context: baseline.key(),
        out,
    };
    let (b, c) = (&baseline.graph, &current.graph);
    sink.count("graph.nodes", b.nodes, c.nodes);
    sink.count("graph.gemm", b.gemm, c.gemm);
    sink.count("graph.non_gemm", b.non_gemm, c.non_gemm);
    sink.count("graph.dynamic", b.dynamic, c.dynamic);
    sink.count("graph.params", b.params, c.params);
    sink.count(
        "graph.peak_activation_bytes",
        b.peak_activation_bytes,
        c.peak_activation_bytes,
    );
    sink.count(
        "graph.bytes_materialized",
        b.bytes_materialized,
        c.bytes_materialized,
    );
    sink.count_map("graph.groups", &b.groups, &c.groups);

    let (b, c) = (&baseline.cost, &current.cost);
    sink.float(tol, "cost.total_us", b.total_us, c.total_us);
    sink.float(tol, "cost.gemm_us", b.gemm_us, c.gemm_us);
    sink.float(tol, "cost.non_gemm_us", b.non_gemm_us, c.non_gemm_us);
    sink.float(tol, "cost.non_gemm_frac", b.non_gemm_frac, c.non_gemm_frac);
    sink.float(tol, "cost.energy_mj", b.energy_mj, c.energy_mj);
    sink.float_map(tol, "cost.groups_us", &b.groups_us, &c.groups_us);

    let (b, c) = (&baseline.schedule, &current.schedule);
    sink.count("schedule.wavefronts", b.wavefronts, c.wavefronts);
    sink.count("schedule.max_width", b.max_width, c.max_width);
    sink.float(tol, "schedule.mean_width", b.mean_width, c.mean_width);
    sink.flag("schedule.complete", b.complete, c.complete);

    let (b, c) = (&baseline.lints, &current.lints);
    sink.count("lints.deny", b.deny, c.deny);
    sink.count("lints.warn", b.warn, c.warn);
    sink.count("lints.allow", b.allow, c.allow);

    let (b, c) = (&baseline.opt, &current.opt);
    sink.count("opt.nodes_before", b.nodes_before, c.nodes_before);
    sink.count("opt.nodes_after", b.nodes_after, c.nodes_after);
    sink.count(
        "opt.intermediate_bytes_saved",
        b.intermediate_bytes_saved,
        c.intermediate_bytes_saved,
    );
    sink.count_map("opt.rewrites", &b.rewrites, &c.rewrites);

    match (&baseline.decode, &current.decode) {
        (Some(b), Some(c)) => {
            sink.count("decode.nodes", b.nodes, c.nodes);
            sink.count("decode.gemm", b.gemm, c.gemm);
            sink.count("decode.non_gemm", b.non_gemm, c.non_gemm);
            sink.float(
                tol,
                "decode.decode_total_us",
                b.decode_total_us,
                c.decode_total_us,
            );
            sink.float(
                tol,
                "decode.prefill_non_gemm_frac",
                b.prefill_non_gemm_frac,
                c.prefill_non_gemm_frac,
            );
            sink.float(
                tol,
                "decode.decode_non_gemm_frac",
                b.decode_non_gemm_frac,
                c.decode_non_gemm_frac,
            );
        }
        (Some(_), None) => sink.push("decode", "present", "absent"),
        (None, Some(_)) => sink.push("decode", "absent", "present"),
        (None, None) => {}
    }
}

/// Diffs `current` against `baseline` for one model. Snapshot cells are
/// matched by `(scale, opt_level)`; cells present on only one side are
/// themselves diffs. The wall-clock channel is compared only when both
/// sides carry it (it is optional by design) and fails one-sidedly: only
/// a slow-down beyond [`Tolerance::wallclock_factor`] — or a non-finite
/// current median — is a regression.
pub fn compare_model(
    baseline: &ModelBaseline,
    current: &ModelBaseline,
    tol: &Tolerance,
) -> Vec<MetricDiff> {
    let mut out = Vec::new();
    for b in &baseline.snapshots {
        match current.snapshot(&b.scale, b.opt_level) {
            Some(c) => compare_snapshot(&baseline.model, tol, b, c, &mut out),
            None => out.push(MetricDiff {
                model: baseline.model.clone(),
                context: b.key(),
                metric: "snapshot".to_string(),
                baseline: "present".to_string(),
                current: "missing".to_string(),
            }),
        }
    }
    for c in &current.snapshots {
        if baseline.snapshot(&c.scale, c.opt_level).is_none() {
            out.push(MetricDiff {
                model: baseline.model.clone(),
                context: c.key(),
                metric: "snapshot".to_string(),
                baseline: "missing".to_string(),
                current: "present".to_string(),
            });
        }
    }
    if let (Some(b), Some(c)) = (&baseline.wallclock, &current.wallclock) {
        let limit = b.median_us * tol.wallclock_factor;
        if !c.median_us.is_finite() || c.median_us <= 0.0 || c.median_us > limit {
            out.push(MetricDiff {
                model: baseline.model.clone(),
                context: "wallclock".to_string(),
                metric: "median_us".to_string(),
                baseline: format!("{:.1} (limit {:.1})", b.median_us, limit),
                current: format!("{:.1}", c.median_us),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{model_baseline, WallClock};
    use ngb_models::ModelId;

    fn gpt2_baseline() -> ModelBaseline {
        model_baseline(ModelId::Gpt2, None).unwrap()
    }

    #[test]
    fn identical_baselines_compare_clean() {
        let b = gpt2_baseline();
        assert!(compare_model(&b, &b.clone(), &Tolerance::default()).is_empty());
    }

    #[test]
    fn perturbed_cost_names_the_exact_model_and_metric() {
        let base = gpt2_baseline();
        let mut cur = base.clone();
        cur.snapshots[0].cost.gemm_us *= 1.01;
        let diffs = compare_model(&base, &cur, &Tolerance::default());
        assert_eq!(diffs.len(), 1, "only the perturbed metric fires: {diffs:?}");
        assert_eq!(diffs[0].model, "gpt2");
        assert_eq!(diffs[0].context, base.snapshots[0].key());
        assert_eq!(diffs[0].metric, "cost.gemm_us");
    }

    #[test]
    fn perturbed_counts_and_maps_fire_exactly() {
        let base = gpt2_baseline();
        let mut cur = base.clone();
        cur.snapshots[1].graph.nodes += 1;
        cur.snapshots[1].opt.rewrites.insert("layout".into(), 999);
        let diffs = compare_model(&base, &cur, &Tolerance::default());
        let metrics: Vec<&str> = diffs.iter().map(|d| d.metric.as_str()).collect();
        assert!(metrics.contains(&"graph.nodes"), "{metrics:?}");
        assert!(metrics.contains(&"opt.rewrites.layout"), "{metrics:?}");
        assert_eq!(diffs.len(), 2);
    }

    #[test]
    fn missing_snapshot_cell_is_a_diff() {
        let base = gpt2_baseline();
        let mut cur = base.clone();
        cur.snapshots.remove(0);
        let diffs = compare_model(&base, &cur, &Tolerance::default());
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].metric, "snapshot");
        assert_eq!(diffs[0].current, "missing");
    }

    #[test]
    fn wallclock_is_one_sided_and_generous() {
        let mut base = gpt2_baseline();
        base.wallclock = Some(WallClock {
            iterations: 5,
            median_us: 100.0,
        });
        let tol = Tolerance::default();
        let mut fast = base.clone();
        fast.wallclock = Some(WallClock {
            iterations: 5,
            median_us: 1.0,
        });
        assert!(
            compare_model(&base, &fast, &tol).is_empty(),
            "faster is fine"
        );
        let mut within = base.clone();
        within.wallclock = Some(WallClock {
            iterations: 5,
            median_us: 100.0 * tol.wallclock_factor * 0.9,
        });
        assert!(compare_model(&base, &within, &tol).is_empty());
        let mut slow = base.clone();
        slow.wallclock = Some(WallClock {
            iterations: 5,
            median_us: 100.0 * tol.wallclock_factor * 1.1,
        });
        let diffs = compare_model(&base, &slow, &tol);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].context, "wallclock");
        let mut skipped = base.clone();
        skipped.wallclock = None;
        assert!(
            compare_model(&base, &skipped, &tol).is_empty(),
            "NGB_NO_WALLCLOCK checks skip the channel"
        );
    }

    #[test]
    fn default_tolerance_is_tight_on_floats_generous_on_wallclock() {
        let tol = Tolerance::default();
        assert!(tol.rel > 0.0 && tol.rel < 1e-6);
        assert!(tol.wallclock_factor >= 2.0);
        assert!(tol.floats_equal(1.0, 1.0 + 1e-12));
        assert!(!tol.floats_equal(1.0, 1.0 + 1e-6));
    }
}
