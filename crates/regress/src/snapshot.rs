//! Deterministic metric snapshots: everything `ngb-regress` pins down
//! about one (model × scale × opt-level) configuration.

use std::collections::BTreeMap;
use std::time::Instant;

use ngb_analyze::Analyzer;
use ngb_exec::{Interpreter, Schedule};
use ngb_models::{ModelId, Scale};
use ngb_opt::{optimize_with, OptLevel, OptReport};
use ngb_platform::Platform;
use ngb_profiler::profile_analytic;
use ngb_runtime::Flow;
use ngb_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// Version of the on-disk baseline layout. Bump whenever a metric is
/// added, removed, or renamed; readers refuse mismatched files with a
/// "regenerate with `--update`" error instead of mis-diffing them.
///
/// v2: added `graph.bytes_materialized` and the `contiguous_elided`
/// rewrite counter.
/// v3: added the `decode` channel (decode-step graph census and
/// prefill-vs-decode stage cost split) for autoregressive LM models.
/// v4: the taxonomy census gained the `Collective` group (all-reduce /
/// all-gather / transfer nodes inserted by `ngb-shard` count there
/// instead of `Other`), so every census vector grew one entry.
pub const SCHEMA_VERSION: u64 = 4;

/// Total positions (prompt + generated) the decode-channel graphs are
/// built for, per scale. Fixed so the census is deterministic.
fn decode_total_len(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Full => 128,
    }
}

/// The snapshot matrix: every committed baseline covers both scales at
/// all three optimization levels.
pub const SCALES: [Scale; 2] = [Scale::Tiny, Scale::Full];

/// Optimization levels covered by each baseline (see [`SCALES`]).
pub const OPT_LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

/// Graph-structure invariants (the taxonomy census of the paper's §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Total node count, including inputs.
    pub nodes: usize,
    /// GEMM-classified nodes.
    pub gemm: usize,
    /// Non-GEMM nodes.
    pub non_gemm: usize,
    /// Nodes with data-dependent output shapes.
    pub dynamic: usize,
    /// Synthetic parameter count.
    pub params: usize,
    /// Peak activation memory under sequential execution, bytes.
    pub peak_activation_bytes: usize,
    /// Static upper bound on bytes the optimized graph's remaining
    /// `Contiguous` nodes copy ([`Graph::contiguous_copy_bytes`]
    /// (ngb_graph::Graph::contiguous_copy_bytes)). Contiguous elision
    /// drives this to zero for transpose→matmul / attention-prologue
    /// chains; a silent rise here means a kernel regained an eager copy.
    pub bytes_materialized: usize,
    /// Non-GEMM census per taxonomy group (zero-count groups omitted).
    pub groups: BTreeMap<String, usize>,
}

/// Analytic cost-model invariants on the reference configuration
/// (data-center platform, eager flow, GPU on, batch 1). These are pure
/// f64 arithmetic — bit-stable across runs, hosts, and thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMetrics {
    /// End-to-end latency, microseconds.
    pub total_us: f64,
    /// Latency in GEMM-classified operators, microseconds.
    pub gemm_us: f64,
    /// Latency in non-GEMM operators, microseconds.
    pub non_gemm_us: f64,
    /// Non-GEMM share of end-to-end latency, in `[0, 1]` (the paper's
    /// headline metric).
    pub non_gemm_frac: f64,
    /// End-to-end energy, millijoules.
    pub energy_mj: f64,
    /// Latency per non-GEMM taxonomy group, microseconds.
    pub groups_us: BTreeMap<String, f64>,
}

/// Wavefront-schedule invariants (what the parallel executor sees).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Number of Kahn wavefronts (DAG depth).
    pub wavefronts: usize,
    /// Widest wavefront.
    pub max_width: usize,
    /// Mean wavefront width.
    pub mean_width: f64,
    /// Whether every node scheduled (always true for preset models).
    pub complete: bool,
}

/// Lint census from the `ngb-analyze` passes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintMetrics {
    /// Deny-level findings (0 for every committed preset).
    pub deny: usize,
    /// Warn-level findings.
    pub warn: usize,
    /// Allow-level findings (fusion opportunities etc.).
    pub allow: usize,
}

/// What the graph rewriter did at this snapshot's level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptMetrics {
    /// Node count before rewriting.
    pub nodes_before: usize,
    /// Node count after rewriting.
    pub nodes_after: usize,
    /// Intermediate bytes no longer materialized.
    pub intermediate_bytes_saved: usize,
    /// Per-rewrite counters keyed by [`OptReport::counters`] labels.
    pub rewrites: BTreeMap<String, usize>,
}

impl From<&OptReport> for OptMetrics {
    fn from(r: &OptReport) -> OptMetrics {
        OptMetrics {
            nodes_before: r.nodes_before,
            nodes_after: r.nodes_after,
            intermediate_bytes_saved: r.intermediate_bytes_saved,
            rewrites: r
                .counters()
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// Decode-channel invariants for autoregressive LMs: the census of the
/// single-token decode-step graph (KV-cache attention) and the analytic
/// prefill-vs-decode stage split. `None` for models without a decode
/// path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeMetrics {
    /// Node count of the decode-step graph (after this cell's opt level).
    pub nodes: usize,
    /// GEMM-classified nodes in the decode-step graph.
    pub gemm: usize,
    /// Non-GEMM nodes in the decode-step graph.
    pub non_gemm: usize,
    /// Analytic end-to-end latency of one decode step, microseconds.
    pub decode_total_us: f64,
    /// Non-GEMM share of the prefill (full-sequence) stage, `[0, 1]`.
    pub prefill_non_gemm_frac: f64,
    /// Non-GEMM share of one decode step, `[0, 1]` — the paper's
    /// generation-phase headline: at sequence length 1 every GEMM is a
    /// matrix-vector product, so this sits at or above the prefill
    /// fraction.
    pub decode_non_gemm_frac: f64,
}

/// One cell of the snapshot matrix: all deterministic invariants of a
/// (model × scale × opt-level) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Model scale ([`Scale::name`]).
    pub scale: String,
    /// Graph-rewrite level.
    pub opt_level: OptLevel,
    /// Graph-structure census.
    pub graph: GraphMetrics,
    /// Analytic cost-model totals.
    pub cost: CostMetrics,
    /// Wavefront schedule shape.
    pub schedule: ScheduleMetrics,
    /// Lint counts.
    pub lints: LintMetrics,
    /// Optimizer deltas.
    pub opt: OptMetrics,
    /// Decode-step channel (autoregressive LMs only). Absent in the
    /// serialized form for non-LM models and in pre-v3 baselines.
    pub decode: Option<DecodeMetrics>,
}

impl Snapshot {
    /// `"tiny/O1"`-style key used in diff reports.
    pub fn key(&self) -> String {
        format!("{}/{}", self.scale, self.opt_level)
    }
}

/// The noise-tolerant wall-clock smoke channel: median-of-k host
/// execution of the tiny preset. Unlike every other metric this is
/// *measured*, so it is compared against a generous relative threshold
/// (see `Tolerance::wallclock_factor`) and can be skipped entirely with
/// `NGB_NO_WALLCLOCK=1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallClock {
    /// Samples taken (the median is over these).
    pub iterations: usize,
    /// Median end-to-end host latency, microseconds.
    pub median_us: f64,
}

/// Everything `ngb-regress` pins down about one model: the full
/// scale × opt-level snapshot matrix plus the optional wall-clock
/// channel. This is the unit of storage — one JSON file per model under
/// `baselines/`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBaseline {
    /// On-disk layout version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Model alias (Table 4 naming, also the file stem).
    pub model: String,
    /// The snapshot matrix, in [`SCALES`] × [`OPT_LEVELS`] order.
    pub snapshots: Vec<Snapshot>,
    /// Wall-clock smoke sample; `None` when captured under
    /// `NGB_NO_WALLCLOCK`.
    pub wallclock: Option<WallClock>,
}

impl ModelBaseline {
    /// The snapshot for `(scale, opt_level)`, if present.
    pub fn snapshot(&self, scale: &str, opt_level: OptLevel) -> Option<&Snapshot> {
        self.snapshots
            .iter()
            .find(|s| s.scale == scale && s.opt_level == opt_level)
    }
}

/// Takes the deterministic snapshot of one (model × scale × opt-level)
/// cell on the reference platform.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn snapshot(id: ModelId, scale: Scale, level: OptLevel) -> Result<Snapshot, TensorError> {
    let built = id.build(1, scale)?;
    // Elision pinned on (the default) so baselines never depend on the
    // ambient NGB_ELIDE environment.
    let (graph, opt_report) = optimize_with(&built, level, true);
    let analysis = Analyzer::new().analyze(&graph);
    let (deny, warn, allow) = analysis.severity_counts();
    let profile = profile_analytic(&graph, &Platform::data_center(), Flow::Eager, true, 1);
    let breakdown = profile.breakdown();
    let sched = Schedule::new(&graph).stats();

    let census = &analysis.census;
    Ok(Snapshot {
        scale: scale.name().to_string(),
        opt_level: level,
        graph: GraphMetrics {
            nodes: census.nodes,
            gemm: census.gemm,
            non_gemm: census.non_gemm(),
            dynamic: census.dynamic,
            params: graph.param_count(),
            peak_activation_bytes: graph.peak_activation_bytes(),
            bytes_materialized: graph.contiguous_copy_bytes() as usize,
            groups: census
                .groups
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|&(label, n)| (label.to_string(), n))
                .collect(),
        },
        cost: CostMetrics {
            total_us: breakdown.total_s * 1e6,
            gemm_us: breakdown.gemm_s * 1e6,
            non_gemm_us: breakdown.non_gemm_s() * 1e6,
            non_gemm_frac: breakdown.non_gemm_frac(),
            energy_mj: profile.total_energy_j() * 1e3,
            groups_us: breakdown
                .group_pairs()
                .into_iter()
                .map(|(label, s)| (label.to_string(), s * 1e6))
                .collect(),
        },
        schedule: ScheduleMetrics {
            wavefronts: sched.depth,
            max_width: sched.max_width,
            mean_width: sched.mean_width,
            complete: sched.complete,
        },
        lints: LintMetrics { deny, warn, allow },
        opt: OptMetrics::from(&opt_report),
        decode: decode_metrics(id, scale, level, &breakdown)?,
    })
}

/// Builds the decode channel for one snapshot cell: optimizes and
/// profiles the decode-step graph at this cell's level and splits cost
/// by [`ngb_profiler::StagePhase`]. Returns `None` for models without a
/// decode path.
fn decode_metrics(
    id: ModelId,
    scale: Scale,
    level: OptLevel,
    prefill: &ngb_profiler::Breakdown,
) -> Result<Option<DecodeMetrics>, TensorError> {
    use ngb_profiler::StagePhase;
    let Some(bundle) = ngb_models::decode_bundle(id, scale, 1, decode_total_len(scale)) else {
        return Ok(None);
    };
    let bundle = bundle?;
    let (graph, _) = optimize_with(&bundle.decode, level, true);
    let census = Analyzer::new().analyze(&graph).census;
    let profile = profile_analytic(&graph, &Platform::data_center(), Flow::Eager, true, 1)
        .with_stage(StagePhase::Decode);
    let decode = profile.stage_breakdown(StagePhase::Decode);
    Ok(Some(DecodeMetrics {
        nodes: census.nodes,
        gemm: census.gemm,
        non_gemm: census.non_gemm(),
        decode_total_us: decode.total_s * 1e6,
        prefill_non_gemm_frac: prefill.non_gemm_frac(),
        decode_non_gemm_frac: decode.non_gemm_frac(),
    }))
}

/// Measures the wall-clock smoke channel: median over `iterations` real
/// host executions of the tiny preset (plus one warm-up run), in
/// microseconds.
///
/// # Errors
///
/// Propagates graph-construction or kernel errors.
pub fn wallclock_median_us(id: ModelId, iterations: usize) -> Result<WallClock, TensorError> {
    let graph = id.build(1, Scale::Tiny)?;
    let interp = Interpreter::new(0x5eed);
    interp.run(&graph)?; // warm-up: first run pays weight synthesis
    let iterations = iterations.max(1);
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let t0 = Instant::now();
        interp.run(&graph)?;
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    Ok(WallClock {
        iterations,
        median_us: samples[samples.len() / 2],
    })
}

/// Builds the full baseline for one model: the [`SCALES`] × [`OPT_LEVELS`]
/// snapshot matrix plus, when `wallclock_iters` is `Some`, the measured
/// wall-clock channel.
///
/// # Errors
///
/// Propagates graph-construction or kernel errors.
pub fn model_baseline(
    id: ModelId,
    wallclock_iters: Option<usize>,
) -> Result<ModelBaseline, TensorError> {
    let mut snapshots = Vec::with_capacity(SCALES.len() * OPT_LEVELS.len());
    for scale in SCALES {
        for level in OPT_LEVELS {
            snapshots.push(snapshot(id, scale, level)?);
        }
    }
    let wallclock = match wallclock_iters {
        Some(k) => Some(wallclock_median_us(id, k)?),
        None => None,
    };
    Ok(ModelBaseline {
        schema: SCHEMA_VERSION,
        model: id.spec().alias.to_string(),
        snapshots,
        wallclock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_deterministic() {
        let a = snapshot(ModelId::Gpt2, Scale::Tiny, OptLevel::O1).unwrap();
        let b = snapshot(ModelId::Gpt2, Scale::Tiny, OptLevel::O1).unwrap();
        assert_eq!(a, b, "two snapshots of the same cell must be identical");
        assert!(a.graph.nodes > 0);
        assert!(a.cost.total_us > 0.0);
        assert!(a.schedule.complete);
        assert_eq!(a.lints.deny, 0, "presets are deny-clean");
        assert_eq!(a.key(), "tiny/O1");
    }

    #[test]
    fn opt_levels_shrink_the_graph_in_snapshots() {
        let o0 = snapshot(ModelId::ResNet50, Scale::Tiny, OptLevel::O0).unwrap();
        let o2 = snapshot(ModelId::ResNet50, Scale::Tiny, OptLevel::O2).unwrap();
        assert_eq!(o0.opt.nodes_before, o0.opt.nodes_after);
        assert!(o2.opt.nodes_after < o2.opt.nodes_before);
        assert!(o2.graph.nodes < o0.graph.nodes);
        assert!(o2.opt.rewrites.values().sum::<usize>() > 0);
    }

    #[test]
    fn model_baseline_covers_the_matrix() {
        let b = model_baseline(ModelId::Bert, None).unwrap();
        assert_eq!(b.schema, SCHEMA_VERSION);
        assert_eq!(b.model, "bert");
        assert_eq!(b.snapshots.len(), 6);
        assert!(b.wallclock.is_none());
        assert!(b.snapshot("tiny", OptLevel::O2).is_some());
        assert!(b.snapshot("full", OptLevel::O0).is_some());
        assert!(b.snapshot("huge", OptLevel::O0).is_none());
    }

    #[test]
    fn wallclock_channel_measures_something() {
        let w = wallclock_median_us(ModelId::Gpt2, 3).unwrap();
        assert_eq!(w.iterations, 3);
        assert!(w.median_us.is_finite() && w.median_us > 0.0);
    }
}
