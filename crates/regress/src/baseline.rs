//! On-disk baseline store: one versioned JSON file per model under the
//! baseline directory, plus the repo-root `BENCH_BASELINE.json` seed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::snapshot::{ModelBaseline, Snapshot, SCHEMA_VERSION};

/// Why a baseline could not be read, written, or produced.
#[derive(Debug)]
pub enum RegressError {
    /// Filesystem failure.
    Io {
        /// Offending path.
        path: PathBuf,
        /// Underlying error message.
        msg: String,
    },
    /// File exists but is not valid JSON / not baseline-shaped.
    Parse {
        /// Offending path.
        path: PathBuf,
        /// Parser message.
        msg: String,
    },
    /// File parses but was written by a different schema version.
    Schema {
        /// Offending path.
        path: PathBuf,
        /// Version found in the file.
        found: u64,
        /// Version this binary writes.
        expected: u64,
    },
    /// Building the current snapshot failed.
    Build {
        /// Model alias.
        model: String,
        /// Underlying error message.
        msg: String,
    },
}

impl std::fmt::Display for RegressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressError::Io { path, msg } => write!(f, "{}: {msg}", path.display()),
            RegressError::Parse { path, msg } => {
                write!(f, "{}: malformed baseline: {msg}", path.display())
            }
            RegressError::Schema {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: baseline schema v{found}, this binary expects v{expected}; \
                 regenerate with `nongemm-cli ci --update`",
                path.display()
            ),
            RegressError::Build { model, msg } => {
                write!(f, "building snapshot for '{model}' failed: {msg}")
            }
        }
    }
}

impl std::error::Error for RegressError {}

/// Minimal probe deserialized before the full document, so schema
/// mismatches surface as [`RegressError::Schema`] rather than a field
/// error deep inside an unrelated struct.
#[derive(Deserialize)]
struct SchemaProbe {
    schema: u64,
}

/// Path of `model`'s baseline file under `dir` (`<dir>/<alias>.json`).
pub fn baseline_path(dir: &Path, model: &str) -> PathBuf {
    dir.join(format!("{model}.json"))
}

/// Loads and schema-checks one baseline file.
///
/// # Errors
///
/// [`RegressError::Io`] when unreadable, [`RegressError::Parse`] on
/// malformed JSON, [`RegressError::Schema`] on a version mismatch.
pub fn load_baseline(path: &Path) -> Result<ModelBaseline, RegressError> {
    let text = std::fs::read_to_string(path).map_err(|e| RegressError::Io {
        path: path.to_path_buf(),
        msg: e.to_string(),
    })?;
    let probe: SchemaProbe = serde_json::from_str(&text).map_err(|e| RegressError::Parse {
        path: path.to_path_buf(),
        msg: e.to_string(),
    })?;
    if probe.schema != SCHEMA_VERSION {
        return Err(RegressError::Schema {
            path: path.to_path_buf(),
            found: probe.schema,
            expected: SCHEMA_VERSION,
        });
    }
    serde_json::from_str(&text).map_err(|e| RegressError::Parse {
        path: path.to_path_buf(),
        msg: e.to_string(),
    })
}

/// Writes one baseline file (pretty-printed, trailing newline), creating
/// the directory if needed.
///
/// # Errors
///
/// [`RegressError::Io`] on filesystem failure.
pub fn write_baseline(path: &Path, baseline: &ModelBaseline) -> Result<(), RegressError> {
    let io = |e: std::io::Error| RegressError::Io {
        path: path.to_path_buf(),
        msg: e.to_string(),
    };
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(io)?;
    }
    let mut text = serde_json::to_string_pretty(baseline).expect("baselines serialize");
    text.push('\n');
    std::fs::write(path, text).map_err(io)
}

/// One model's row in `BENCH_BASELINE.json`: the full-scale O0
/// cost-model end-to-end totals — the seed point for the bench
/// trajectory future PRs extend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// End-to-end analytic latency, microseconds.
    pub total_us: f64,
    /// Latency in GEMM operators, microseconds.
    pub gemm_us: f64,
    /// Latency in non-GEMM operators, microseconds.
    pub non_gemm_us: f64,
    /// Non-GEMM share of end-to-end latency.
    pub non_gemm_frac: f64,
}

/// The repo-root `BENCH_BASELINE.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSeed {
    /// Layout version (shares [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Per-model entries keyed by alias.
    pub models: BTreeMap<String, BenchEntry>,
}

impl BenchSeed {
    /// An empty seed at the current schema version.
    pub fn new() -> BenchSeed {
        BenchSeed {
            schema: SCHEMA_VERSION,
            models: BTreeMap::new(),
        }
    }
}

impl Default for BenchSeed {
    fn default() -> BenchSeed {
        BenchSeed::new()
    }
}

/// The bench-seed entry derived from a full-scale O0 snapshot.
pub fn bench_entry(snapshot: &Snapshot) -> BenchEntry {
    BenchEntry {
        total_us: snapshot.cost.total_us,
        gemm_us: snapshot.cost.gemm_us,
        non_gemm_us: snapshot.cost.non_gemm_us,
        non_gemm_frac: snapshot.cost.non_gemm_frac,
    }
}

/// Merges `entries` into the bench seed at `path` (creating it when
/// absent or unreadable at the current schema) and rewrites it. Entries
/// for models not in `entries` are preserved, so partial `--update` runs
/// don't drop the rest of the table.
///
/// # Errors
///
/// [`RegressError::Io`] on filesystem failure.
pub fn update_bench_seed(
    path: &Path,
    entries: impl IntoIterator<Item = (String, BenchEntry)>,
) -> Result<BenchSeed, RegressError> {
    let mut seed = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<BenchSeed>(&text).ok())
        .filter(|s| s.schema == SCHEMA_VERSION)
        .unwrap_or_default();
    for (model, entry) in entries {
        seed.models.insert(model, entry);
    }
    let mut text = serde_json::to_string_pretty(&seed).expect("seeds serialize");
    text.push('\n');
    std::fs::write(path, text).map_err(|e| RegressError::Io {
        path: path.to_path_buf(),
        msg: e.to_string(),
    })?;
    Ok(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{model_baseline, SCALES};
    use ngb_models::ModelId;
    use ngb_opt::OptLevel;

    fn tmpdir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .subsec_nanos();
        let dir =
            std::env::temp_dir().join(format!("ngb-regress-{tag}-{}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn baseline_round_trips_exactly() {
        let dir = tmpdir("roundtrip");
        let baseline = model_baseline(ModelId::Gpt2, None).unwrap();
        let path = baseline_path(&dir, &baseline.model);
        write_baseline(&path, &baseline).unwrap();
        let reread = load_baseline(&path).unwrap();
        assert_eq!(baseline, reread, "JSON round-trip must be lossless");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_is_a_clear_error_not_a_panic() {
        let dir = tmpdir("schema");
        let path = baseline_path(&dir, "gpt2");
        std::fs::write(&path, "{\"schema\": 99, \"model\": \"gpt2\"}").unwrap();
        let err = load_baseline(&path).unwrap_err();
        assert!(matches!(
            err,
            RegressError::Schema {
                found: 99,
                expected: SCHEMA_VERSION,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("--update"),
            "must tell the user the fix: {msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let dir = tmpdir("malformed");
        let path = baseline_path(&dir, "bad");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            load_baseline(&path).unwrap_err(),
            RegressError::Parse { .. }
        ));
        assert!(matches!(
            load_baseline(&dir.join("absent.json")).unwrap_err(),
            RegressError::Io { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_seed_merges_without_dropping_other_models() {
        let dir = tmpdir("seed");
        let path = dir.join("BENCH_BASELINE.json");
        let baseline = model_baseline(ModelId::Bert, None).unwrap();
        let snap = baseline
            .snapshot(SCALES[1].name(), OptLevel::O0)
            .expect("full/O0 snapshot exists");
        let first = update_bench_seed(&path, [("bert".to_string(), bench_entry(snap))]).unwrap();
        assert_eq!(first.models.len(), 1);
        let second = update_bench_seed(
            &path,
            [(
                "gpt2".to_string(),
                BenchEntry {
                    total_us: 1.0,
                    gemm_us: 0.5,
                    non_gemm_us: 0.5,
                    non_gemm_frac: 0.5,
                },
            )],
        )
        .unwrap();
        assert_eq!(second.models.len(), 2, "merge keeps the bert entry");
        assert!(second.models.contains_key("bert"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
