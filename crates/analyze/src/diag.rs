//! The lint registry, severity levels, per-lint configuration, and the
//! [`Diagnostic`] record every pass emits.

use ngb_graph::NodeId;

/// How seriously a finding is treated.
///
/// Severities order `Allow < Warn < Deny`; a graph is "clean" when it has no
/// deny-level findings. `Allow` findings are still recorded (fusion
/// opportunities use this level) but renderers hide them unless asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: recorded, hidden from default output.
    Allow,
    /// Suspicious but not invalid.
    Warn,
    /// An invariant violation; fails `verify`.
    Deny,
}

impl Severity {
    /// Lower-case label used in reports (`allow` / `warn` / `deny`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The analyzer's passes, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pass {
    /// NodeId/topology consistency, dead nodes, duplicate subgraphs.
    Structural,
    /// Re-runs shape inference and cross-checks stored shapes.
    Shape,
    /// GEMM / non-GEMM census against the paper's §2.1 taxonomy.
    Taxonomy,
    /// `op_cost` sanity invariants.
    Cost,
    /// Fusion-opportunity patterns (Linear→GELU, attention, Conv→BN→ReLU).
    Fusion,
    /// Inter-operator parallelism: wavefront widths of the dependency DAG.
    Parallelism,
    /// Schedule/memory hazard verification via `ngb-sanitize`:
    /// happens-before coverage, storage interference, partition
    /// disjointness.
    Hazard,
    /// KV-cache conventions of autoregressive decode-step graphs.
    Decode,
    /// Multi-device shard-plan health: stage balance and cut transfer
    /// weight of graphs carrying collective/transfer nodes.
    Shard,
}

impl Pass {
    /// All passes in execution order.
    pub fn all() -> &'static [Pass] {
        &[
            Pass::Structural,
            Pass::Shape,
            Pass::Taxonomy,
            Pass::Cost,
            Pass::Fusion,
            Pass::Parallelism,
            Pass::Hazard,
            Pass::Decode,
            Pass::Shard,
        ]
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Structural => "structural",
            Pass::Shape => "shape",
            Pass::Taxonomy => "taxonomy",
            Pass::Cost => "cost",
            Pass::Fusion => "fusion",
            Pass::Parallelism => "parallelism",
            Pass::Hazard => "hazard",
            Pass::Decode => "decode",
            Pass::Shard => "shard",
        }
    }
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every lint the analyzer can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// A node's stored id disagrees with its position.
    NodeIdMismatch,
    /// A node consumes an id no node in the graph carries.
    DanglingInput,
    /// A node consumes a node at or after its own position.
    NonTopologicalInput,
    /// A node's output is never consumed while later nodes continue the
    /// graph (unreachable from the output frontier).
    DeadNode,
    /// Two nodes apply the identical op to the identical inputs (a common
    /// subexpression elimination candidate).
    DuplicateSubgraph,
    /// A node's stored output shape disagrees with re-run shape inference.
    ShapeMismatch,
    /// Shape inference fails outright on a node's stored input shapes.
    ShapeInferFailed,
    /// A non-GEMM node's group is missing from `NonGemmGroup::all()`, so
    /// census reports would silently drop it.
    UnknownGroup,
    /// The GEMM + per-group censuses do not add up to the node count, or
    /// disagree with the `Graph` counting helpers.
    CensusMismatch,
    /// A GEMM-classified node reports zero FLOPs.
    GemmZeroFlops,
    /// A node reports FLOPs or traffic but zero kernel launches.
    KernellessWork,
    /// A non-input, non-metadata node reports an all-zero cost.
    ZeroCostNode,
    /// A static kernel's traffic is below the bytes of its inputs plus
    /// outputs.
    TrafficUnderflow,
    /// A GEMM feeding a single-consumer activation (fusable epilogue).
    FuseLinearActivation,
    /// The `MatMul → scale → (mask) → Softmax` attention prologue
    /// (FlashAttention-style fusion candidate).
    FuseAttention,
    /// The `Conv2d → BatchNorm → ReLU` triple (foldable at inference).
    FuseConvBnRelu,
    /// A multi-node graph whose every wavefront has width 1, so a parallel
    /// executor can never overlap two operators.
    SerialGraph,
    /// The schedule or buffer plan silently dropped out-of-range input
    /// references, so its ordering/lifetimes cover only part of the graph.
    PlanDroppedEdges,
    /// A data edge is missing from, or left unordered by, the schedule's
    /// happens-before relation — a statically detected race.
    UnorderedDataEdge,
    /// The buffer plan's lifetimes diverge from the graph (truncated or
    /// extended), or a slot-sharing pair of values can interfere.
    StorageInterference,
    /// An intra-op chunk decomposition is not a pairwise-disjoint exact
    /// cover of its operator's output.
    PartitionHazard,
    /// A decode-step graph re-exports a concatenation grown from a cache
    /// input: the cache gains a slot every step, so a driver feeding the
    /// output back in needs unbounded storage. Well-formed decode graphs
    /// keep the cache input's capacity fixed and expose only the fresh
    /// K/V rows.
    UnboundedCacheGrowth,
    /// KV-cache inputs across layers disagree on capacity (the slot
    /// dimension), so some layers attend over a different window than
    /// others and serve stale or truncated history.
    StaleCacheShape,
    /// A shard plan's heaviest stage carries more than twice the modeled
    /// work of its lightest, so the pipeline's bubble is paced by one
    /// device while the others idle.
    UnbalancedStage,
    /// The activation bytes crossing a shard plan's device cuts exceed
    /// the bytes the plan's compute nodes write: the partition moves more
    /// data than it produces and the links dominate the schedule.
    TransferDominatedCut,
}

impl Lint {
    /// All lints, grouped by pass.
    pub fn all() -> &'static [Lint] {
        &[
            Lint::NodeIdMismatch,
            Lint::DanglingInput,
            Lint::NonTopologicalInput,
            Lint::DeadNode,
            Lint::DuplicateSubgraph,
            Lint::ShapeMismatch,
            Lint::ShapeInferFailed,
            Lint::UnknownGroup,
            Lint::CensusMismatch,
            Lint::GemmZeroFlops,
            Lint::KernellessWork,
            Lint::ZeroCostNode,
            Lint::TrafficUnderflow,
            Lint::FuseLinearActivation,
            Lint::FuseAttention,
            Lint::FuseConvBnRelu,
            Lint::SerialGraph,
            Lint::PlanDroppedEdges,
            Lint::UnorderedDataEdge,
            Lint::StorageInterference,
            Lint::PartitionHazard,
            Lint::UnboundedCacheGrowth,
            Lint::StaleCacheShape,
            Lint::UnbalancedStage,
            Lint::TransferDominatedCut,
        ]
    }

    /// Stable kebab-case name (the id used in output and configuration).
    pub fn name(self) -> &'static str {
        match self {
            Lint::NodeIdMismatch => "node-id-mismatch",
            Lint::DanglingInput => "dangling-input",
            Lint::NonTopologicalInput => "non-topological-input",
            Lint::DeadNode => "dead-node",
            Lint::DuplicateSubgraph => "duplicate-subgraph",
            Lint::ShapeMismatch => "shape-mismatch",
            Lint::ShapeInferFailed => "shape-infer-failed",
            Lint::UnknownGroup => "unknown-group",
            Lint::CensusMismatch => "census-mismatch",
            Lint::GemmZeroFlops => "gemm-zero-flops",
            Lint::KernellessWork => "kernelless-work",
            Lint::ZeroCostNode => "zero-cost-node",
            Lint::TrafficUnderflow => "traffic-underflow",
            Lint::FuseLinearActivation => "fuse-linear-activation",
            Lint::FuseAttention => "fuse-attention",
            Lint::FuseConvBnRelu => "fuse-conv-bn-relu",
            Lint::SerialGraph => "serial-graph",
            Lint::PlanDroppedEdges => "plan-dropped-edges",
            Lint::UnorderedDataEdge => "unordered-data-edge",
            Lint::StorageInterference => "storage-interference",
            Lint::PartitionHazard => "partition-hazard",
            Lint::UnboundedCacheGrowth => "unbounded-cache-growth",
            Lint::StaleCacheShape => "stale-cache-shape",
            Lint::UnbalancedStage => "unbalanced-stage",
            Lint::TransferDominatedCut => "transfer-dominated-cut",
        }
    }

    /// Resolves a kebab-case name back to its lint.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::all().iter().copied().find(|l| l.name() == name)
    }

    /// The pass that raises this lint.
    pub fn pass(self) -> Pass {
        match self {
            Lint::NodeIdMismatch
            | Lint::DanglingInput
            | Lint::NonTopologicalInput
            | Lint::DeadNode
            | Lint::DuplicateSubgraph => Pass::Structural,
            Lint::ShapeMismatch | Lint::ShapeInferFailed => Pass::Shape,
            Lint::UnknownGroup | Lint::CensusMismatch => Pass::Taxonomy,
            Lint::GemmZeroFlops
            | Lint::KernellessWork
            | Lint::ZeroCostNode
            | Lint::TrafficUnderflow => Pass::Cost,
            Lint::FuseLinearActivation | Lint::FuseAttention | Lint::FuseConvBnRelu => Pass::Fusion,
            Lint::SerialGraph => Pass::Parallelism,
            Lint::PlanDroppedEdges
            | Lint::UnorderedDataEdge
            | Lint::StorageInterference
            | Lint::PartitionHazard => Pass::Hazard,
            Lint::UnboundedCacheGrowth | Lint::StaleCacheShape => Pass::Decode,
            Lint::UnbalancedStage | Lint::TransferDominatedCut => Pass::Shard,
        }
    }

    /// Default severity (see the lint table in `DESIGN.md`).
    pub fn default_severity(self) -> Severity {
        match self {
            Lint::NodeIdMismatch
            | Lint::DanglingInput
            | Lint::NonTopologicalInput
            | Lint::ShapeMismatch
            | Lint::ShapeInferFailed
            | Lint::UnknownGroup
            | Lint::CensusMismatch
            | Lint::GemmZeroFlops
            | Lint::KernellessWork
            | Lint::ZeroCostNode
            | Lint::PlanDroppedEdges
            | Lint::UnorderedDataEdge
            | Lint::StorageInterference
            | Lint::PartitionHazard
            | Lint::UnboundedCacheGrowth
            | Lint::StaleCacheShape => Severity::Deny,
            Lint::DeadNode
            | Lint::DuplicateSubgraph
            | Lint::TrafficUnderflow
            | Lint::UnbalancedStage
            | Lint::TransferDominatedCut => Severity::Warn,
            Lint::FuseLinearActivation
            | Lint::FuseAttention
            | Lint::FuseConvBnRelu
            | Lint::SerialGraph => Severity::Allow,
        }
    }

    /// One-line description for `--help`-style listings.
    pub fn description(self) -> &'static str {
        match self {
            Lint::NodeIdMismatch => "a node's stored id disagrees with its position",
            Lint::DanglingInput => "a node consumes an id no node carries",
            Lint::NonTopologicalInput => "a node consumes a node at or after its own position",
            Lint::DeadNode => "a node's output is never consumed while the graph continues",
            Lint::DuplicateSubgraph => "identical op applied to identical inputs (CSE candidate)",
            Lint::ShapeMismatch => "stored output shape disagrees with re-run shape inference",
            Lint::ShapeInferFailed => "shape inference fails on the stored input shapes",
            Lint::UnknownGroup => "non-GEMM group missing from the census group list",
            Lint::CensusMismatch => "GEMM + group censuses do not add up to the node count",
            Lint::GemmZeroFlops => "a GEMM-classified node reports zero FLOPs",
            Lint::KernellessWork => "FLOPs or traffic reported with zero kernel launches",
            Lint::ZeroCostNode => "a non-input compute node reports an all-zero cost",
            Lint::TrafficUnderflow => "kernel traffic below the bytes of its inputs + outputs",
            Lint::FuseLinearActivation => "GEMM feeding a single-consumer activation",
            Lint::FuseAttention => "MatMul -> scale -> (mask) -> Softmax attention prologue",
            Lint::FuseConvBnRelu => "Conv2d -> BatchNorm -> ReLU triple",
            Lint::SerialGraph => "no inter-operator parallelism (every wavefront has width 1)",
            Lint::PlanDroppedEdges => "schedule or buffer plan silently dropped input references",
            Lint::UnorderedDataEdge => "data edge unordered by the schedule's happens-before",
            Lint::StorageInterference => "plan lifetimes diverge from the graph or slots interfere",
            Lint::PartitionHazard => "intra-op chunk decomposition is not a disjoint exact cover",
            Lint::UnboundedCacheGrowth => {
                "a grown KV-cache concatenation is re-exported, so cache storage is unbounded"
            }
            Lint::StaleCacheShape => "KV-cache inputs disagree on capacity across layers",
            Lint::UnbalancedStage => {
                "a shard stage carries more than twice the modeled work of the lightest stage"
            }
            Lint::TransferDominatedCut => {
                "activation bytes crossing device cuts exceed the bytes the plan computes"
            }
        }
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-lint severity overrides layered over [`Lint::default_severity`].
///
/// # Examples
///
/// ```
/// use ngb_analyze::{Lint, LintConfig, Severity};
///
/// let config = LintConfig::new().deny(Lint::DeadNode).allow(Lint::TrafficUnderflow);
/// assert_eq!(config.severity(Lint::DeadNode), Severity::Deny);
/// assert_eq!(config.severity(Lint::ShapeMismatch), Severity::Deny); // default
/// ```
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: Vec<(Lint, Severity)>,
}

impl LintConfig {
    /// A configuration with every lint at its default severity.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Sets `lint` to `severity` (builder style; later calls win).
    #[must_use]
    pub fn set(mut self, lint: Lint, severity: Severity) -> LintConfig {
        self.overrides.retain(|(l, _)| *l != lint);
        self.overrides.push((lint, severity));
        self
    }

    /// Shorthand for [`LintConfig::set`] with [`Severity::Allow`].
    #[must_use]
    pub fn allow(self, lint: Lint) -> LintConfig {
        self.set(lint, Severity::Allow)
    }

    /// Shorthand for [`LintConfig::set`] with [`Severity::Warn`].
    #[must_use]
    pub fn warn(self, lint: Lint) -> LintConfig {
        self.set(lint, Severity::Warn)
    }

    /// Shorthand for [`LintConfig::set`] with [`Severity::Deny`].
    #[must_use]
    pub fn deny(self, lint: Lint) -> LintConfig {
        self.set(lint, Severity::Deny)
    }

    /// The effective severity of `lint`.
    pub fn severity(&self, lint: Lint) -> Severity {
        self.overrides
            .iter()
            .find(|(l, _)| *l == lint)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| lint.default_severity())
    }
}

/// One finding: a lint, its effective severity, the node it anchors to
/// (`None` for graph-level findings), and a human-readable message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Effective severity after configuration.
    pub severity: Severity,
    /// The node the finding anchors to, when node-scoped.
    pub node: Option<NodeId>,
    /// The anchored node's dotted name (empty for graph-level findings).
    pub node_name: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(id) if !self.node_name.is_empty() => write!(
                f,
                "{}[{}] {} ({}): {}",
                self.severity, self.lint, id, self.node_name, self.message
            ),
            Some(id) => write!(
                f,
                "{}[{}] {}: {}",
                self.severity, self.lint, id, self.message
            ),
            None => write!(
                f,
                "{}[{}] graph: {}",
                self.severity, self.lint, self.message
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &l in Lint::all() {
            assert!(seen.insert(l.name()), "duplicate lint name {}", l.name());
            assert_eq!(Lint::from_name(l.name()), Some(l));
            assert!(!l.description().is_empty());
        }
        assert_eq!(Lint::from_name("nope"), None);
    }

    #[test]
    fn every_pass_has_lints_and_every_lint_a_pass() {
        for &p in Pass::all() {
            assert!(
                Lint::all().iter().any(|l| l.pass() == p),
                "pass {p} has no lints"
            );
        }
    }

    #[test]
    fn config_overrides_win_and_later_calls_replace() {
        let c = LintConfig::new().allow(Lint::DeadNode).deny(Lint::DeadNode);
        assert_eq!(c.severity(Lint::DeadNode), Severity::Deny);
        assert_eq!(c.severity(Lint::FuseAttention), Severity::Allow);
        assert!(Severity::Allow < Severity::Warn && Severity::Warn < Severity::Deny);
    }
}
