//! Analysis results: the per-model operator census and the
//! [`AnalysisReport`] with its human-readable and JSON renderings.

use crate::diag::{Diagnostic, Lint, Severity};

/// Per-model GEMM / non-GEMM operator census (the paper's §2.1 breakdown).
#[derive(Debug, Clone)]
pub struct Census {
    /// Total node count, including inputs.
    pub nodes: usize,
    /// GEMM-classified nodes (Linear / Conv / MatMul / BMM families).
    pub gemm: usize,
    /// Non-GEMM nodes per functional group, in report order
    /// (`(label, count)`, zero-count groups included).
    pub groups: Vec<(&'static str, usize)>,
    /// Nodes whose output shape is data-dependent (NMS, RoIAlign).
    pub dynamic: usize,
}

impl Census {
    /// Total non-GEMM nodes.
    pub fn non_gemm(&self) -> usize {
        self.groups.iter().map(|&(_, n)| n).sum()
    }

    /// Non-GEMM share of all operators, in `[0, 1]`.
    pub fn non_gemm_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.non_gemm() as f64 / self.nodes as f64
        }
    }
}

/// Wavefront shape of the graph's dependency DAG (the parallelism pass).
///
/// All zeros when the graph is empty or structurally broken — a corrupt
/// graph has no meaningful schedule, so the pass reports nothing rather
/// than guessing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ParallelismStats {
    /// Number of Kahn wavefronts (the DAG's depth).
    pub wavefronts: usize,
    /// Widest wavefront: the most operators ever runnable at once.
    pub max_width: usize,
    /// Mean wavefront width (nodes / wavefronts).
    pub mean_width: f64,
}

/// Everything the analyzer found for one graph.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The analyzed graph's name.
    pub graph_name: String,
    /// All findings, in pass order (allow-level findings included).
    pub diagnostics: Vec<Diagnostic>,
    /// The taxonomy pass's operator census.
    pub census: Census,
    /// The parallelism pass's wavefront statistics.
    pub parallelism: ParallelismStats,
}

impl AnalysisReport {
    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Whether the graph has no deny-level findings.
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// `(deny, warn, allow)` finding counts in one call — the stable
    /// lint-census extractor the `ngb-regress` baseline snapshots use.
    pub fn severity_counts(&self) -> (usize, usize, usize) {
        (
            self.deny_count(),
            self.warn_count(),
            self.count(Severity::Allow),
        )
    }

    /// All findings raised by `lint`.
    pub fn findings(&self, lint: Lint) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == lint).collect()
    }

    /// Human-readable report. Allow-level findings (fusion opportunities)
    /// are summarized unless `include_allowed` is set.
    pub fn to_text(&self, include_allowed: bool) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "analysis of '{}'", self.graph_name);
        let c = &self.census;
        let _ = writeln!(
            out,
            "  census: {} nodes, {} gemm, {} non-gemm ({:.1}%), {} dynamic",
            c.nodes,
            c.gemm,
            c.non_gemm(),
            100.0 * c.non_gemm_fraction(),
            c.dynamic
        );
        let groups: Vec<String> = c
            .groups
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(label, n)| format!("{label}={n}"))
            .collect();
        let _ = writeln!(out, "  groups: {}", groups.join(" "));
        let p = &self.parallelism;
        let _ = writeln!(
            out,
            "  parallelism: {} wavefronts, max width {}, mean width {:.2}",
            p.wavefronts, p.max_width, p.mean_width
        );
        for d in &self.diagnostics {
            if d.severity > Severity::Allow || include_allowed {
                let _ = writeln!(out, "  {d}");
            }
        }
        let _ = writeln!(
            out,
            "  {} deny, {} warn, {} allow -> {}",
            self.deny_count(),
            self.warn_count(),
            self.count(Severity::Allow),
            if self.is_clean() { "PASS" } else { "FAIL" }
        );
        out
    }

    /// JSON rendering of the full report (allow-level findings included).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{{\"graph\":{}", json_string(&self.graph_name));
        let _ = write!(
            out,
            ",\"summary\":{{\"deny\":{},\"warn\":{},\"allow\":{},\"clean\":{}}}",
            self.deny_count(),
            self.warn_count(),
            self.count(Severity::Allow),
            self.is_clean()
        );
        let c = &self.census;
        let _ = write!(
            out,
            ",\"census\":{{\"nodes\":{},\"gemm\":{},\"non_gemm\":{},\"dynamic\":{},\"groups\":{{",
            c.nodes,
            c.gemm,
            c.non_gemm(),
            c.dynamic
        );
        for (i, &(label, n)) in c.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(label), n);
        }
        out.push_str("}}");
        let p = &self.parallelism;
        let _ = write!(
            out,
            ",\"parallelism\":{{\"wavefronts\":{},\"max_width\":{},\"mean_width\":{:.4}}}",
            p.wavefronts, p.max_width, p.mean_width
        );
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let node = match d.node {
                Some(id) => id.0.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"lint\":{},\"pass\":{},\"severity\":{},\"node\":{},\"name\":{},\"message\":{}}}",
                json_string(d.lint.name()),
                json_string(d.lint.pass().name()),
                json_string(d.severity.label()),
                node,
                json_string(&d.node_name),
                json_string(&d.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_graph::NodeId;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            graph_name: "toy \"quoted\"".into(),
            diagnostics: vec![
                Diagnostic {
                    lint: Lint::DeadNode,
                    severity: Severity::Warn,
                    node: Some(NodeId(3)),
                    node_name: "block.act".into(),
                    message: "output never consumed".into(),
                },
                Diagnostic {
                    lint: Lint::FuseAttention,
                    severity: Severity::Allow,
                    node: Some(NodeId(9)),
                    node_name: "attn.softmax".into(),
                    message: "attention prologue".into(),
                },
            ],
            census: Census {
                nodes: 10,
                gemm: 2,
                groups: vec![("Activation", 3), ("Memory", 5)],
                dynamic: 0,
            },
            parallelism: ParallelismStats {
                wavefronts: 5,
                max_width: 3,
                mean_width: 2.0,
            },
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.deny_count(), 0);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.count(Severity::Allow), 1);
        assert!(r.is_clean());
        assert_eq!(r.findings(Lint::DeadNode).len(), 1);
        assert_eq!(r.census.non_gemm(), 8);
        assert!((r.census.non_gemm_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn text_hides_allow_level_by_default() {
        let r = sample();
        let brief = r.to_text(false);
        assert!(brief.contains("dead-node"));
        assert!(!brief.contains("fuse-attention"));
        assert!(brief.contains("PASS"));
        let full = r.to_text(true);
        assert!(full.contains("fuse-attention"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let r = sample();
        let js = r.to_json();
        assert!(js.contains("\"graph\":\"toy \\\"quoted\\\"\""));
        assert!(js.contains("\"deny\":0"));
        assert!(js.contains("\"lint\":\"dead-node\""));
        assert!(js.contains("\"node\":3"));
        // must parse back with the workspace JSON parser
        let v: serde_json::Value = serde_json::from_str(&js).unwrap();
        assert_eq!(v["summary"]["warn"], 1);
        assert_eq!(v["census"]["groups"]["Memory"], 5);
        assert_eq!(v["parallelism"]["max_width"], 3);
        assert_eq!(v["diagnostics"][1]["lint"], "fuse-attention");
        assert_eq!(v["diagnostics"][0]["node"], 3);
    }
}
