//! # ngb-analyze
//!
//! Static graph analysis and lints over the NonGEMM Bench operator IR — a
//! `clippy` for [`ngb_graph::Graph`]s. The [`Analyzer`] runs nine passes:
//!
//! 1. **structural** — NodeId/topological-order consistency, dangling
//!    inputs, dead-node detection, duplicate-subgraph (CSE) candidates;
//! 2. **shape** — independently re-runs [`ngb_graph::infer_shape`] on every
//!    node and cross-checks the stored `out_shape`;
//! 3. **taxonomy** — audits the GEMM / non-GEMM classification and produces
//!    the per-model operator census of the paper's §2.1;
//! 4. **cost** — `op_cost` invariants: GEMMs do work, work launches
//!    kernels, static kernels move at least their operands;
//! 5. **fusion** — flags Linear→GELU epilogues, `MatMul → scale → (mask) →
//!    Softmax` attention prologues, and Conv→BN→ReLU triples as
//!    optimization opportunities;
//! 6. **parallelism** — builds the executor's wavefront schedule
//!    ([`ngb_exec::Schedule`]) and reports the graph's depth and max/mean
//!    wavefront width — how much inter-operator parallelism a multi-threaded
//!    runner can exploit;
//! 7. **hazard** — runs the `ngb-sanitize` static verifier
//!    ([`ngb_sanitize::verify_graph`]): happens-before coverage of every
//!    data edge, storage-interference soundness of the buffer plan, and
//!    partition disjointness of intra-op chunk decompositions;
//! 8. **decode** — KV-cache conventions of autoregressive decode-step
//!    graphs: a grown cache concatenation re-exported as an output
//!    (unbounded cache growth) and per-layer cache inputs that disagree
//!    on capacity (stale cache shape);
//! 9. **shard** — multi-device shard-plan health for graphs carrying
//!    `ngb-shard` collective/transfer nodes: stage imbalance that paces
//!    the pipeline on one device (unbalanced stage) and cuts that move
//!    more bytes than the plan computes (transfer-dominated cut).
//!
//! Findings are [`Diagnostic`]s with a configurable severity
//! (allow / warn / deny, per lint via [`LintConfig`]) and render both
//! human-readable ([`AnalysisReport::to_text`]) and as JSON
//! ([`AnalysisReport::to_json`]). The `nongemm-cli verify <model>`
//! subcommand and the opt-in [`ngb_exec::Interpreter`] preflight are built
//! on this crate.
//!
//! # Examples
//!
//! ```
//! use ngb_analyze::{Analyzer, Lint, Severity};
//! use ngb_graph::{GraphBuilder, OpKind};
//!
//! # fn main() -> Result<(), ngb_tensor::TensorError> {
//! let mut b = GraphBuilder::new("toy");
//! let x = b.input(&[1, 8]);
//! let h = b.push(OpKind::Linear { in_f: 8, out_f: 8, bias: true }, &[x], "fc")?;
//! b.push(OpKind::Gelu, &[h], "act")?;
//! let report = Analyzer::new().analyze(&b.finish());
//!
//! assert!(report.is_clean()); // no deny-level findings
//! assert_eq!(report.census.gemm, 1);
//! // the fusable linear->gelu pair is reported at allow level
//! let fusable = report.findings(Lint::FuseLinearActivation);
//! assert_eq!(fusable.len(), 1);
//! assert_eq!(fusable[0].severity, Severity::Allow);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod diag;
mod passes;
mod report;

pub use diag::{Diagnostic, Lint, LintConfig, Pass, Severity};
pub use passes::Analyzer;
pub use report::{AnalysisReport, Census, ParallelismStats};
