//! The [`Analyzer`] and its nine passes.
//!
//! Passes run in a fixed order — structural, shape, taxonomy, cost,
//! fusion, parallelism, hazard, decode, shard — and each appends
//! [`Diagnostic`]s to the report. Later passes
//! guard against structurally broken nodes (out-of-range inputs) instead of
//! assuming the structural pass came back clean, so a single corrupted node
//! produces one precise finding rather than a cascade of panics.

use std::collections::BTreeMap;

use ngb_graph::{infer_shape, Graph, Node, NodeId, NonGemmGroup, OpClass, OpKind, StructuralIssue};
use ngb_tensor::num_elements;

use crate::diag::{Diagnostic, Lint, LintConfig};
use crate::report::{AnalysisReport, Census, ParallelismStats};

/// Multi-pass static analyzer over an operator [`Graph`].
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: LintConfig,
}

/// Mutable state threaded through the passes of one `analyze` call.
struct Ctx<'g> {
    graph: &'g Graph,
    config: &'g LintConfig,
    /// consumers[i] = number of nodes consuming node i's output.
    consumers: Vec<usize>,
    /// Whether every input id of node i is in range (safe to cost/infer).
    sound: Vec<bool>,
    diagnostics: Vec<Diagnostic>,
}

impl<'g> Ctx<'g> {
    fn new(graph: &'g Graph, config: &'g LintConfig) -> Ctx<'g> {
        let len = graph.len();
        let mut consumers = vec![0usize; len];
        let mut sound = vec![true; len];
        for (i, node) in graph.iter().enumerate() {
            for &inp in &node.inputs {
                if inp.0 < len {
                    consumers[inp.0] += 1;
                } else {
                    sound[i] = false;
                }
                // a forward reference makes the node's semantics undefined;
                // the structural pass owns that finding
                if inp.0 >= i {
                    sound[i] = false;
                }
            }
        }
        Ctx {
            graph,
            config,
            consumers,
            sound,
            diagnostics: Vec::new(),
        }
    }

    /// Records a node-scoped finding at the configured severity.
    fn emit(&mut self, lint: Lint, node: NodeId, message: String) {
        let node_name = self
            .graph
            .nodes
            .get(node.0)
            .map(|n| n.name.clone())
            .unwrap_or_default();
        self.diagnostics.push(Diagnostic {
            lint,
            severity: self.config.severity(lint),
            node: Some(node),
            node_name,
            message,
        });
    }

    /// Records a graph-level finding at the configured severity.
    fn emit_graph(&mut self, lint: Lint, message: String) {
        self.diagnostics.push(Diagnostic {
            lint,
            severity: self.config.severity(lint),
            node: None,
            node_name: String::new(),
            message,
        });
    }

    /// Input shapes of `node`, when all its inputs are in range.
    fn input_shapes(&self, node: &Node) -> Option<Vec<Vec<usize>>> {
        node.inputs
            .iter()
            .map(|&i| self.graph.nodes.get(i.0).map(|n| n.out_shape.clone()))
            .collect()
    }
}

impl Analyzer {
    /// An analyzer with every lint at its default severity.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// An analyzer with per-lint severity overrides.
    pub fn with_config(config: LintConfig) -> Analyzer {
        Analyzer { config }
    }

    /// Runs all nine passes over `graph`.
    pub fn analyze(&self, graph: &Graph) -> AnalysisReport {
        let mut ctx = Ctx::new(graph, &self.config);
        structural_pass(&mut ctx);
        shape_pass(&mut ctx);
        let census = taxonomy_pass(&mut ctx);
        cost_pass(&mut ctx);
        fusion_pass(&mut ctx);
        let parallelism = parallelism_pass(&mut ctx);
        hazard_pass(&mut ctx);
        decode_pass(&mut ctx);
        shard_pass(&mut ctx);
        AnalysisReport {
            graph_name: graph.name.clone(),
            diagnostics: ctx.diagnostics,
            census,
            parallelism,
        }
    }
}

/// Pass 1: NodeId/topology consistency (via [`Graph::structural_issues`]),
/// dead-node detection, and duplicate-subgraph (CSE) candidates.
fn structural_pass(ctx: &mut Ctx) {
    for issue in ctx.graph.structural_issues() {
        let lint = match issue {
            StructuralIssue::IdMismatch { .. } => Lint::NodeIdMismatch,
            StructuralIssue::InputOutOfRange { .. } => Lint::DanglingInput,
            StructuralIssue::NonTopologicalInput { .. } => Lint::NonTopologicalInput,
        };
        ctx.emit(lint, issue.node(), issue.to_string());
    }

    // Dead nodes: a sink (no consumers) is dead when some later node is
    // still interior — the graph moved on without this result. Trailing
    // sinks are the graph's output frontier and stay live.
    let last_interior = ctx
        .consumers
        .iter()
        .rposition(|&c| c > 0)
        .map(|p| p as isize)
        .unwrap_or(-1);
    for (i, node) in ctx.graph.iter().enumerate() {
        if ctx.consumers[i] == 0 && (i as isize) < last_interior {
            ctx.emit(
                Lint::DeadNode,
                NodeId(i),
                format!(
                    "'{}' is never consumed but the graph continues past it",
                    node.name
                ),
            );
        }
    }

    // Duplicate subgraphs: identical op applied to identical inputs.
    // Inputs themselves are excluded (same shape does not mean same data).
    let mut seen: BTreeMap<String, NodeId> = BTreeMap::new();
    for node in ctx.graph.iter() {
        if node.inputs.is_empty() {
            continue;
        }
        let key = format!("{:?}|{:?}", node.op, node.inputs);
        match seen.get(&key) {
            Some(&first) => {
                let msg = format!(
                    "'{}' recomputes {} ({}) on the same inputs; CSE candidate",
                    node.name,
                    first,
                    node.op.name()
                );
                ctx.emit(Lint::DuplicateSubgraph, node.id, msg);
            }
            None => {
                seen.insert(key, node.id);
            }
        }
    }
}

/// Pass 2: independently re-runs shape inference on every node and
/// cross-checks the stored `out_shape`.
fn shape_pass(ctx: &mut Ctx) {
    for (i, node) in ctx.graph.iter().enumerate() {
        if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) || !ctx.sound[i] {
            continue;
        }
        let Some(input_shapes) = ctx.input_shapes(node) else {
            continue;
        };
        match infer_shape(&node.op, &input_shapes) {
            Err(e) => {
                let msg = format!("{} on inputs {:?}: {e}", node.op.name(), input_shapes);
                ctx.emit(Lint::ShapeInferFailed, node.id, msg);
            }
            Ok(inferred) if inferred != node.out_shape => {
                let msg = format!(
                    "stored shape {:?} but {} infers {:?}",
                    node.out_shape,
                    node.op.name(),
                    inferred
                );
                ctx.emit(Lint::ShapeMismatch, node.id, msg);
            }
            Ok(_) => {}
        }
    }
}

/// Pass 3: audits the GEMM / non-GEMM taxonomy and produces the per-model
/// census (the paper's §2.1 breakdown), cross-checked against the
/// [`Graph`] counting helpers.
fn taxonomy_pass(ctx: &mut Ctx) -> Census {
    let mut gemm = 0usize;
    let mut dynamic = 0usize;
    let mut by_group: BTreeMap<&'static str, usize> = BTreeMap::new();
    for node in ctx.graph.iter() {
        if node.op.is_dynamic() {
            dynamic += 1;
        }
        match node.class() {
            OpClass::Gemm => gemm += 1,
            OpClass::NonGemm(group) => {
                if !NonGemmGroup::all().contains(&group) {
                    let msg = format!(
                        "group {:?} of {} is missing from NonGemmGroup::all(); census \
                         reports would drop it",
                        group,
                        node.op.name()
                    );
                    ctx.emit(Lint::UnknownGroup, node.id, msg);
                }
                *by_group.entry(group.label()).or_insert(0) += 1;
            }
        }
    }
    let groups: Vec<(&'static str, usize)> = NonGemmGroup::all()
        .iter()
        .map(|g| (g.label(), by_group.get(g.label()).copied().unwrap_or(0)))
        .collect();
    let census = Census {
        nodes: ctx.graph.len(),
        gemm,
        groups,
        dynamic,
    };

    if census.gemm + census.non_gemm() != census.nodes {
        ctx.emit_graph(
            Lint::CensusMismatch,
            format!(
                "{} gemm + {} non-gemm != {} nodes",
                census.gemm,
                census.non_gemm(),
                census.nodes
            ),
        );
    }
    if ctx.graph.gemm_count() != census.gemm {
        ctx.emit_graph(
            Lint::CensusMismatch,
            format!(
                "Graph::gemm_count() says {} but the per-node census says {}",
                ctx.graph.gemm_count(),
                census.gemm
            ),
        );
    }
    for &g in NonGemmGroup::all() {
        let from_graph = ctx.graph.group_count(g);
        let from_census = census
            .groups
            .iter()
            .find(|&&(l, _)| l == g.label())
            .map_or(0, |&(_, n)| n);
        if from_graph != from_census {
            ctx.emit_graph(
                Lint::CensusMismatch,
                format!(
                    "Graph::group_count({}) says {from_graph} but the census says {from_census}",
                    g.label()
                ),
            );
        }
    }
    census
}

/// Pass 4: `op_cost` sanity invariants — GEMMs do work, work launches
/// kernels, kernels move at least their operands, and nothing but inputs
/// and metadata views is free.
fn cost_pass(ctx: &mut Ctx) {
    for (i, node) in ctx.graph.iter().enumerate() {
        if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) || !ctx.sound[i] {
            continue;
        }
        let Some(input_shapes) = ctx.input_shapes(node) else {
            continue;
        };
        let cost = ngb_graph::op_cost(&node.op, &input_shapes, &node.out_shape);

        if node.class().is_gemm() && cost.flops <= 0.0 {
            ctx.emit(
                Lint::GemmZeroFlops,
                node.id,
                format!("GEMM op {} reports {} flops", node.op.name(), cost.flops),
            );
        }
        let works = cost.flops > 0.0 || cost.memory_bytes() > 0.0;
        if cost.kernels == 0 && works {
            ctx.emit(
                Lint::KernellessWork,
                node.id,
                format!(
                    "{} reports {} flops and {} traffic bytes with zero kernel launches",
                    node.op.name(),
                    cost.flops,
                    cost.memory_bytes()
                ),
            );
        }
        if cost.kernels == 0 && !works && node.class().group() != Some(NonGemmGroup::Memory) {
            ctx.emit(
                Lint::ZeroCostNode,
                node.id,
                format!(
                    "{} reports an all-zero cost but is not a metadata view",
                    node.op.name()
                ),
            );
        }
        // Static kernels must move at least their operands; dynamic ops
        // (NMS, RoIAlign) cost nominal shapes and are exempt.
        if cost.kernels >= 1 && !cost.dynamic {
            let operand_bytes = 4.0
                * (num_elements(&node.out_shape)
                    + input_shapes.iter().map(|s| num_elements(s)).sum::<usize>())
                    as f64;
            if cost.memory_bytes() + 0.5 < operand_bytes {
                ctx.emit(
                    Lint::TrafficUnderflow,
                    node.id,
                    format!(
                        "{} moves {} bytes but its operands total {} bytes",
                        node.op.name(),
                        cost.memory_bytes(),
                        operand_bytes
                    ),
                );
            }
        }
    }
}

/// Pass 5: fusion-opportunity patterns. All three lints default to
/// [`crate::diag::Severity::Allow`]: they flag optimization candidates,
/// not defects.
fn fusion_pass(ctx: &mut Ctx) {
    let g = ctx.graph;
    let len = g.len();
    // in-range single input of a node, if any
    let single_input = |node: &Node| -> Option<NodeId> {
        match node.inputs.first() {
            Some(&i) if i.0 < len => Some(i),
            _ => None,
        }
    };
    let mut found: Vec<(Lint, NodeId, String)> = Vec::new();
    for node in g.iter() {
        // GEMM feeding a single-consumer activation: fusable epilogue.
        if node.class().group() == Some(NonGemmGroup::Activation) {
            if let Some(prev) = single_input(node) {
                let producer = g.node(prev);
                if producer.class().is_gemm() && ctx.consumers[prev.0] == 1 {
                    found.push((
                        Lint::FuseLinearActivation,
                        node.id,
                        format!(
                            "{} '{}' feeds only this {}; fusable as a GEMM epilogue",
                            producer.op.name(),
                            producer.name,
                            node.op.name()
                        ),
                    ));
                }
            }
        }
        // MatMul -> scale -> (mask) -> Softmax attention prologue,
        // anchored at the softmax (walked backwards, single-consumer links).
        if let OpKind::Softmax { .. } = node.op {
            if let Some(chain) = match_attention(ctx, node) {
                found.push((
                    Lint::FuseAttention,
                    node.id,
                    format!(
                        "attention prologue {} ending at '{}'; FlashAttention-style \
                         fusion candidate",
                        chain, node.name
                    ),
                ));
            }
        }
        // Conv2d -> BatchNorm -> ReLU: BN folds into the conv at inference.
        if matches!(node.op, OpKind::Relu | OpKind::Relu6) {
            if let Some(bn_id) = single_input(node) {
                let bn = g.node(bn_id);
                let is_bn = matches!(
                    bn.op,
                    OpKind::BatchNorm2d { .. } | OpKind::FrozenBatchNorm2d { .. }
                );
                if is_bn && ctx.consumers[bn_id.0] == 1 {
                    if let Some(conv_id) = single_input(bn) {
                        let conv = g.node(conv_id);
                        if matches!(conv.op, OpKind::Conv2d { .. }) && ctx.consumers[conv_id.0] == 1
                        {
                            found.push((
                                Lint::FuseConvBnRelu,
                                node.id,
                                format!(
                                    "'{}' -> '{}' -> '{}' folds into a single conv kernel",
                                    conv.name, bn.name, node.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    for (lint, node, msg) in found {
        ctx.emit(lint, node, msg);
    }
}

/// Pass 6: inter-operator parallelism. Builds the same wavefront
/// [`ngb_exec::Schedule`] the parallel executor runs from and reports its
/// shape (depth, max/mean width). A structurally broken graph has no
/// meaningful schedule, so the pass reports zeros and stays silent there —
/// the structural pass already owns those findings.
fn parallelism_pass(ctx: &mut Ctx) -> ParallelismStats {
    if ctx.graph.is_empty() || !ctx.graph.structural_issues().is_empty() {
        return ParallelismStats::default();
    }
    let sched = ngb_exec::Schedule::new(ctx.graph);
    if !sched.is_complete() {
        return ParallelismStats::default();
    }
    let stats = ParallelismStats {
        wavefronts: sched.depth(),
        max_width: sched.max_width(),
        mean_width: sched.mean_width(),
    };
    if stats.max_width <= 1 && ctx.graph.len() > 1 {
        ctx.emit_graph(
            Lint::SerialGraph,
            format!(
                "all {} nodes form a single dependency chain; a parallel \
                 executor cannot overlap any two operators",
                ctx.graph.len()
            ),
        );
    }
    stats
}

/// Pass 7: schedule/memory hazard verification, delegated to
/// [`ngb_sanitize::verify_graph`]. Each hazard maps onto one of four
/// lints by class; a clean graph emits nothing, so this pass never
/// perturbs finding counts (or the perf-regression baselines built on
/// them) for healthy models. Structurally broken graphs are skipped —
/// the structural pass already owns those findings, and the verifier
/// would only re-report the same corruption.
fn hazard_pass(ctx: &mut Ctx) {
    if ctx.graph.is_empty() || !ctx.graph.structural_issues().is_empty() {
        return;
    }
    let report = ngb_sanitize::verify_graph(ctx.graph);
    for hazard in report.hazards {
        let lint = match hazard.kind {
            ngb_sanitize::HazardKind::DroppedEdge
            | ngb_sanitize::HazardKind::IncompleteSchedule => Lint::PlanDroppedEdges,
            ngb_sanitize::HazardKind::MissingEdge
            | ngb_sanitize::HazardKind::UnorderedPair
            | ngb_sanitize::HazardKind::IndegreeMismatch => Lint::UnorderedDataEdge,
            ngb_sanitize::HazardKind::UsesMismatch
            | ngb_sanitize::HazardKind::LifetimeTruncated
            | ngb_sanitize::HazardKind::LifetimeExtended
            | ngb_sanitize::HazardKind::PeakMismatch
            | ngb_sanitize::HazardKind::UnorderedReuse
            | ngb_sanitize::HazardKind::SlotConflict
            | ngb_sanitize::HazardKind::Runtime => Lint::StorageInterference,
            ngb_sanitize::HazardKind::PartitionOverlap
            | ngb_sanitize::HazardKind::PartitionGap
            | ngb_sanitize::HazardKind::PartitionOutOfBounds => Lint::PartitionHazard,
        };
        match hazard.nodes.first() {
            Some(&node) => ctx.emit(lint, node, hazard.message),
            None => ctx.emit_graph(lint, hazard.message),
        }
    }
}

/// Pass 8: KV-cache conventions of autoregressive decode-step graphs.
///
/// * **Unbounded cache growth** — a `Cat` along the slot dimension that
///   appends computed rows onto an `Input` buffer and re-exports the
///   grown result as a graph output. A driver feeding that output back
///   as the next step's cache input needs one more slot every step.
///   Well-formed decode graphs keep the cache input's capacity fixed,
///   consume the concatenation internally, and expose only the fresh
///   K/V rows.
/// * **Stale cache shape** — `*.kv.*_cache` inputs whose slot dimension
///   (dim 1) disagrees across layers, so layers attend over different
///   windows of history.
///
/// Graphs without cache-shaped inputs (every non-decode model) trigger
/// neither lint.
fn decode_pass(ctx: &mut Ctx) {
    let g = ctx.graph;
    // unbounded growth: Cat{dim:1}(..., Input, ..., computed, ...) whose
    // result is a graph output (zero consumers)
    for (i, node) in g.iter().enumerate() {
        if !matches!(node.op, OpKind::Cat { dim: 1 }) || !ctx.sound[i] || ctx.consumers[i] != 0 {
            continue;
        }
        let buffer = node
            .inputs
            .iter()
            .find(|&&inp| matches!(g.node(inp).op, OpKind::Input));
        let computed = node
            .inputs
            .iter()
            .any(|&inp| !matches!(g.node(inp).op, OpKind::Input | OpKind::InputIds { .. }));
        if let (Some(&buffer), true) = (buffer, computed) {
            ctx.emit(
                Lint::UnboundedCacheGrowth,
                node.id,
                format!(
                    "'{}' appends computed rows onto input '{}' and re-exports the grown \
                     result; a cache fed from this output needs one more slot every step",
                    node.name,
                    g.node(buffer).name
                ),
            );
        }
    }

    // stale shape: cache-convention inputs with differing slot capacity
    let caches: Vec<&Node> = g
        .iter()
        .filter(|n| {
            matches!(n.op, OpKind::Input)
                && n.out_shape.len() == 3
                && (n.name.ends_with(".kv.k_cache") || n.name.ends_with(".kv.v_cache"))
        })
        .collect();
    if let Some(first) = caches.first() {
        let cap = first.out_shape[1];
        for c in &caches[1..] {
            if c.out_shape[1] != cap {
                ctx.emit(
                    Lint::StaleCacheShape,
                    c.id,
                    format!(
                        "'{}' holds {} slots but '{}' holds {}; layers would attend over \
                         different windows of history",
                        c.name, c.out_shape[1], first.name, cap
                    ),
                );
            }
        }
    }
}

/// Pass 9: shard-plan health of graphs carrying collective/transfer
/// nodes (plain single-device graphs trigger neither lint).
///
/// * **Unbalanced stage** — stages are the maximal runs of compute nodes
///   between [`OpKind::Transfer`] boundaries in id order; when the
///   heaviest stage models more than twice the work of the lightest, the
///   pipeline's bubble is paced by one device while the others idle.
/// * **Transfer-dominated cut** — the activation bytes crossing the
///   plan's cuts exceed the bytes its compute nodes write, so the links
///   outweigh the compute they connect.
fn shard_pass(ctx: &mut Ctx) {
    let g = ctx.graph;
    if !g.iter().any(|n| n.op.is_collective()) {
        return;
    }
    // modeled work per node: flops + logical traffic (the partitioner's
    // own balance weight)
    let weight = |ctx: &Ctx, node: &Node| -> f64 {
        match ctx.input_shapes(node) {
            Some(shapes) => {
                let c = ngb_graph::op_cost(&node.op, &shapes, &node.out_shape);
                c.flops + c.memory_bytes()
            }
            None => 0.0,
        }
    };
    let mut stages: Vec<f64> = vec![0.0];
    let mut transfer_bytes = 0.0f64;
    let mut compute_bytes = 0.0f64;
    for (i, node) in g.iter().enumerate() {
        if !ctx.sound[i] {
            continue;
        }
        if matches!(node.op, OpKind::Transfer) {
            transfer_bytes += num_elements(&node.out_shape) as f64 * 4.0;
            if *stages.last().expect("nonempty") > 0.0 {
                stages.push(0.0);
            }
            continue;
        }
        if !node.op.is_collective() && !matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) {
            compute_bytes += num_elements(&node.out_shape) as f64 * 4.0;
        }
        *stages.last_mut().expect("nonempty") += weight(ctx, node);
    }
    stages.retain(|&w| w > 0.0);
    if stages.len() >= 2 {
        let heaviest = stages.iter().cloned().fold(0.0f64, f64::max);
        let lightest = stages.iter().cloned().fold(f64::INFINITY, f64::min);
        if heaviest > 2.0 * lightest {
            ctx.emit_graph(
                Lint::UnbalancedStage,
                format!(
                    "heaviest stage models {:.0} work units against the lightest's {:.0} \
                     ({}x); the slowest device paces every microbatch",
                    heaviest,
                    lightest,
                    (heaviest / lightest.max(1.0)).round()
                ),
            );
        }
    }
    if transfer_bytes > 0.0 && transfer_bytes >= compute_bytes.max(1.0) {
        ctx.emit_graph(
            Lint::TransferDominatedCut,
            format!(
                "{:.0} activation bytes cross device cuts against {:.0} bytes computed; \
                 the links dominate the schedule",
                transfer_bytes, compute_bytes
            ),
        );
    }
}

/// Matches the attention prologue backwards from a softmax node:
/// `Matmul/Bmm -> {Div,Mul}Scalar -> [CausalMask | Add] -> Softmax`,
/// every interior link single-consumer. Returns a rendered chain.
fn match_attention(ctx: &Ctx, softmax: &Node) -> Option<String> {
    let g = ctx.graph;
    let len = g.len();
    let step = |id: NodeId| -> Option<&Node> {
        (id.0 < len && ctx.consumers[id.0] == 1).then(|| g.node(id))
    };
    let mut cur = step(*softmax.inputs.first()?)?;
    let mut names = vec![softmax.op.name()];
    if matches!(cur.op, OpKind::CausalMask | OpKind::Add) {
        names.push(cur.op.name());
        cur = step(*cur.inputs.first()?)?;
    }
    if !matches!(cur.op, OpKind::DivScalar(_) | OpKind::MulScalar(_)) {
        return None;
    }
    names.push(cur.op.name());
    cur = step(*cur.inputs.first()?)?;
    if !matches!(cur.op, OpKind::Matmul | OpKind::Bmm) {
        return None;
    }
    names.push(cur.op.name());
    names.reverse();
    Some(names.join(" -> "))
}
