//! Negative tests: each deliberate corruption must trigger exactly the
//! intended lint, anchored at the corrupted node.

use ngb_analyze::{Analyzer, Lint, LintConfig, Severity};
use ngb_graph::{Graph, GraphBuilder, NodeId, OpKind};

/// input -> fc -> gelu -> fc2 -> softmax
fn toy() -> Graph {
    let mut b = GraphBuilder::new("toy");
    let x = b.input(&[2, 16]);
    let h = b
        .push(
            OpKind::Linear {
                in_f: 16,
                out_f: 32,
                bias: true,
            },
            &[x],
            "fc",
        )
        .unwrap();
    let a = b.push(OpKind::Gelu, &[h], "act").unwrap();
    let o = b
        .push(
            OpKind::Linear {
                in_f: 32,
                out_f: 4,
                bias: true,
            },
            &[a],
            "fc2",
        )
        .unwrap();
    b.push(OpKind::Softmax { dim: 1 }, &[o], "probs").unwrap();
    b.finish()
}

/// Asserts `lint` fired at `node` with deny severity, and that no *other*
/// deny-level lint fired anywhere.
fn assert_sole_deny(graph: &Graph, lint: Lint, node: NodeId) {
    let report = Analyzer::new().analyze(graph);
    let hits = report.findings(lint);
    assert!(
        hits.iter().any(|d| d.node == Some(node)),
        "{lint} did not fire at {node}: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
    for d in &report.diagnostics {
        if d.severity == Severity::Deny {
            assert_eq!(d.lint, lint, "unexpected extra deny finding: {d}");
        }
    }
}

#[test]
fn bad_node_id_fires_node_id_mismatch() {
    let mut g = toy();
    g.nodes[1].id = NodeId(7);
    assert_sole_deny(&g, Lint::NodeIdMismatch, NodeId(1));
}

#[test]
fn dangling_input_fires_at_the_consumer() {
    let mut g = toy();
    g.nodes[2].inputs = vec![NodeId(42)];
    assert_sole_deny(&g, Lint::DanglingInput, NodeId(2));
}

#[test]
fn forward_reference_fires_non_topological_input() {
    let mut g = toy();
    g.nodes[2].inputs = vec![NodeId(3)];
    assert_sole_deny(&g, Lint::NonTopologicalInput, NodeId(2));
}

#[test]
fn wrong_out_shape_fires_shape_mismatch() {
    let mut g = toy();
    g.nodes[2].out_shape = vec![2, 33]; // gelu must preserve [2, 32]
                                        // the corruption also cascades into fc2, whose input no longer fits
    let report = Analyzer::new().analyze(&g);
    let hits = report.findings(Lint::ShapeMismatch);
    assert!(
        hits.iter().any(|d| d.node == Some(NodeId(2))),
        "no shape-mismatch at %2"
    );
    assert!(hits.iter().all(|d| d.severity == Severity::Deny));
}

#[test]
fn impossible_shape_fires_shape_infer_failed() {
    let mut g = toy();
    // fc2 expects in_f == 32; lie about gelu's width so inference errors
    g.nodes[2].out_shape = vec![2, 8];
    let report = Analyzer::new().analyze(&g);
    // node 2 itself mismatches, and node 3 fails inference outright
    assert!(report
        .findings(Lint::ShapeMismatch)
        .iter()
        .any(|d| d.node == Some(NodeId(2))));
    assert!(report
        .findings(Lint::ShapeInferFailed)
        .iter()
        .any(|d| d.node == Some(NodeId(3))));
}

#[test]
fn dead_node_fires_on_orphaned_interior_node() {
    let mut g = toy();
    // rewire fc2 to read the linear directly, orphaning the gelu
    g.nodes[3].op = OpKind::Linear {
        in_f: 32,
        out_f: 4,
        bias: true,
    };
    g.nodes[3].inputs = vec![NodeId(1)];
    let report = Analyzer::new().analyze(&g);
    let dead = report.findings(Lint::DeadNode);
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].node, Some(NodeId(2)));
    assert_eq!(dead[0].severity, Severity::Warn);
    // warn-level by default: the graph is still deny-clean...
    assert!(report.is_clean());
    // ...unless the caller escalates the lint
    let strict = Analyzer::with_config(LintConfig::new().deny(Lint::DeadNode));
    assert!(!strict.analyze(&g).is_clean());
}

#[test]
fn zero_cost_gemm_fires_gemm_zero_flops() {
    let mut g = toy();
    // a Linear whose input claims zero rows computes nothing
    g.nodes[0].out_shape = vec![0, 16];
    let report = Analyzer::new().analyze(&g);
    assert!(
        report
            .findings(Lint::GemmZeroFlops)
            .iter()
            .any(|d| d.node == Some(NodeId(1))),
        "{:?}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn duplicate_subgraph_flags_recomputation() {
    let mut b = GraphBuilder::new("dup");
    let x = b.input(&[4, 8]);
    let a = b.push(OpKind::Relu, &[x], "a").unwrap();
    let bb = b.push(OpKind::Relu, &[x], "b").unwrap();
    b.push(OpKind::Add, &[a, bb], "sum").unwrap();
    let g = b.finish();
    let report = Analyzer::new().analyze(&g);
    let dups = report.findings(Lint::DuplicateSubgraph);
    assert_eq!(dups.len(), 1);
    assert_eq!(dups[0].node, Some(NodeId(2)));
    assert_eq!(dups[0].severity, Severity::Warn);
}

#[test]
fn two_inputs_of_equal_shape_are_not_duplicates() {
    let mut b = GraphBuilder::new("two-inputs");
    let x = b.input(&[4, 8]);
    let y = b.input(&[4, 8]);
    b.push(OpKind::Add, &[x, y], "sum").unwrap();
    let report = Analyzer::new().analyze(&b.finish());
    assert!(report.findings(Lint::DuplicateSubgraph).is_empty());
    assert!(report.is_clean());
}

#[test]
fn trailing_multi_output_frontier_is_not_dead() {
    // detection-style ending: several sinks at the end are all outputs
    let mut b = GraphBuilder::new("multi-out");
    let x = b.input(&[8, 4]);
    let h = b.push(OpKind::Relu, &[x], "trunk").unwrap();
    b.push(OpKind::Softmax { dim: 1 }, &[h], "scores").unwrap();
    b.push(OpKind::Sigmoid, &[h], "boxes").unwrap();
    let report = Analyzer::new().analyze(&b.finish());
    assert!(report.findings(Lint::DeadNode).is_empty());
}

#[test]
fn grown_cache_reexported_fires_unbounded_growth() {
    // a decode step that cats fresh rows onto the cache input and exposes
    // the grown tensor as an output (for feeding back next step)
    let mut b = GraphBuilder::new("bad-decode");
    let cache = b.input_named(&[4, 8, 16], "h.0.kv.k_cache");
    let x = b.input(&[4, 1, 16]);
    let fresh = b.push(OpKind::Relu, &[x], "fresh").unwrap();
    let cat = b
        .push(OpKind::Cat { dim: 1 }, &[cache, fresh], "h.0.kv.k_grown")
        .unwrap();
    let g = b.finish();
    let report = Analyzer::new().analyze(&g);
    let hits = report.findings(Lint::UnboundedCacheGrowth);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].node, Some(cat));
    assert_eq!(hits[0].severity, Severity::Deny);
}

#[test]
fn interior_cache_cat_is_well_formed() {
    // the healthy pattern: the concatenation is consumed internally and
    // only the fixed-size fresh row surfaces
    let mut b = GraphBuilder::new("good-decode");
    let cache = b.input_named(&[4, 8, 16], "h.0.kv.k_cache");
    let x = b.input(&[4, 1, 16]);
    let fresh = b.push(OpKind::Relu, &[x], "fresh").unwrap();
    let cat = b
        .push(OpKind::Cat { dim: 1 }, &[cache, fresh], "h.0.kv.k_cat")
        .unwrap();
    b.push(OpKind::Relu, &[cat], "use").unwrap();
    let report = Analyzer::new().analyze(&b.finish());
    assert!(report.findings(Lint::UnboundedCacheGrowth).is_empty());
    assert!(report.findings(Lint::StaleCacheShape).is_empty());
}

#[test]
fn mismatched_cache_capacities_fire_stale_shape() {
    let mut b = GraphBuilder::new("stale-decode");
    let c0 = b.input_named(&[4, 8, 16], "h.0.kv.k_cache");
    let c1 = b.input_named(&[4, 6, 16], "h.1.kv.k_cache"); // 6 != 8
    let r0 = b.push(OpKind::Relu, &[c0], "r0").unwrap();
    let r1 = b.push(OpKind::Relu, &[c1], "r1").unwrap();
    b.push(OpKind::Cat { dim: 1 }, &[r0, r1], "join").unwrap();
    let g = b.finish();
    let report = Analyzer::new().analyze(&g);
    let hits = report.findings(Lint::StaleCacheShape);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].node, Some(c1));
    assert_eq!(hits[0].severity, Severity::Deny);
}
