//! Analyzer sweep over every registry model: all 18 Table 1 graphs must be
//! free of deny-level diagnostics at batch 1, at both scales.

use ngb_analyze::{Analyzer, Lint, Severity};
use ngb_models::{ModelId, Scale};

#[test]
fn every_tiny_model_is_deny_clean_at_batch_1() {
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{m}: {e}"));
        let report = analyzer.analyze(&g);
        let denials: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.to_string())
            .collect();
        assert!(denials.is_empty(), "{m} (tiny): {denials:?}");
    }
}

#[test]
fn every_full_model_is_deny_clean_at_batch_1() {
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m
            .build(1, Scale::Full)
            .unwrap_or_else(|e| panic!("{m}: {e}"));
        let report = analyzer.analyze(&g);
        let denials: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.to_string())
            .collect();
        assert!(denials.is_empty(), "{m} (full): {denials:?}");
        // census must agree with the graph's own counters and cover every node
        assert_eq!(report.census.nodes, g.len(), "{m}");
        assert_eq!(report.census.gemm, g.gemm_count(), "{m}");
        assert_eq!(
            report.census.gemm + report.census.non_gemm(),
            g.len(),
            "{m}"
        );
    }
}

#[test]
fn transformers_expose_attention_fusion_opportunities() {
    // every language model and ViT contains the MatMul->scale->Softmax
    // prologue; the fusion pass must surface it as an allow-level finding
    let analyzer = Analyzer::new();
    for &m in &[
        ModelId::Gpt2,
        ModelId::Bert,
        ModelId::Llama2_7b,
        ModelId::VitBase16,
    ] {
        let g = m.build(1, Scale::Tiny).unwrap();
        let report = analyzer.analyze(&g);
        let attn = report.findings(Lint::FuseAttention);
        assert!(!attn.is_empty(), "{m}: no attention prologue found");
        assert!(attn.iter().all(|d| d.severity == Severity::Allow), "{m}");
    }
}

#[test]
fn convnets_expose_conv_bn_relu_opportunities() {
    let analyzer = Analyzer::new();
    for &m in &[ModelId::ResNet50, ModelId::MobileNetV2] {
        let g = m.build(1, Scale::Tiny).unwrap();
        let report = analyzer.analyze(&g);
        assert!(
            !report.findings(Lint::FuseConvBnRelu).is_empty(),
            "{m}: no conv->bn->relu triple found"
        );
    }
}

#[test]
fn every_model_reports_wavefront_parallelism() {
    // the parallelism pass must produce a complete schedule for every
    // registry model: depth covers all nodes, widths are consistent
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m.build(1, Scale::Tiny).unwrap();
        let p = analyzer.analyze(&g).parallelism;
        assert!(p.wavefronts > 0, "{m}: no wavefronts");
        assert!(p.wavefronts <= g.len(), "{m}");
        assert!(p.max_width >= 1, "{m}");
        assert!(
            p.mean_width >= 1.0 && p.mean_width <= p.max_width as f64,
            "{m}"
        );
        // depth * mean width recovers the node count
        let nodes = p.mean_width * p.wavefronts as f64;
        assert!((nodes - g.len() as f64).abs() < 1e-6, "{m}");
    }
}

#[test]
fn attention_models_have_parallel_wavefronts_and_chains_lint_serial() {
    let analyzer = Analyzer::new();
    // multi-head attention fans out: some wavefront must be wider than 1
    let g = ModelId::VitBase16.build(1, Scale::Tiny).unwrap();
    let report = analyzer.analyze(&g);
    assert!(
        report.parallelism.max_width > 1,
        "ViT should expose inter-operator parallelism, got {:?}",
        report.parallelism
    );
    assert!(report.findings(Lint::SerialGraph).is_empty());

    // a pure chain gets the serial-graph lint at allow level
    let mut b = ngb_graph::GraphBuilder::new("chain");
    let x = b.input(&[1, 8]);
    let h = b.push(ngb_graph::OpKind::Relu, &[x], "a").unwrap();
    b.push(ngb_graph::OpKind::Gelu, &[h], "b").unwrap();
    let report = analyzer.analyze(&b.finish());
    let serial = report.findings(Lint::SerialGraph);
    assert_eq!(serial.len(), 1);
    assert_eq!(serial[0].severity, Severity::Allow);
    assert_eq!(report.parallelism.max_width, 1);
}

#[test]
fn census_fractions_match_the_papers_nongemm_story() {
    // the paper's premise: non-GEMM operators are the majority of nodes
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m.build(1, Scale::Full).unwrap();
        let report = analyzer.analyze(&g);
        assert!(
            report.census.non_gemm_fraction() > 0.5,
            "{m}: non-GEMM fraction {:.2} unexpectedly low",
            report.census.non_gemm_fraction()
        );
    }
}
#[test]
fn decode_graphs_pass_decode_lints() {
    for id in [ngb_models::ModelId::Gpt2, ngb_models::ModelId::Llama2_7b] {
        let b = ngb_models::decode_bundle(id, ngb_models::Scale::Tiny, 1, 8)
            .unwrap()
            .unwrap();
        let r = ngb_analyze::Analyzer::new().analyze(&b.decode);
        assert!(r
            .findings(ngb_analyze::Lint::UnboundedCacheGrowth)
            .is_empty());
        assert!(r.findings(ngb_analyze::Lint::StaleCacheShape).is_empty());
        let denials: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.severity == ngb_analyze::Severity::Deny)
            .collect();
        assert!(denials.is_empty(), "{id:?}: {denials:?}");
    }
}
