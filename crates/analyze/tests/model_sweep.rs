//! Analyzer sweep over every registry model: all 18 Table 1 graphs must be
//! free of deny-level diagnostics at batch 1, at both scales.

use ngb_analyze::{Analyzer, Lint, Severity};
use ngb_models::{ModelId, Scale};

#[test]
fn every_tiny_model_is_deny_clean_at_batch_1() {
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{m}: {e}"));
        let report = analyzer.analyze(&g);
        let denials: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.to_string())
            .collect();
        assert!(denials.is_empty(), "{m} (tiny): {denials:?}");
    }
}

#[test]
fn every_full_model_is_deny_clean_at_batch_1() {
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m
            .build(1, Scale::Full)
            .unwrap_or_else(|e| panic!("{m}: {e}"));
        let report = analyzer.analyze(&g);
        let denials: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.to_string())
            .collect();
        assert!(denials.is_empty(), "{m} (full): {denials:?}");
        // census must agree with the graph's own counters and cover every node
        assert_eq!(report.census.nodes, g.len(), "{m}");
        assert_eq!(report.census.gemm, g.gemm_count(), "{m}");
        assert_eq!(
            report.census.gemm + report.census.non_gemm(),
            g.len(),
            "{m}"
        );
    }
}

#[test]
fn transformers_expose_attention_fusion_opportunities() {
    // every language model and ViT contains the MatMul->scale->Softmax
    // prologue; the fusion pass must surface it as an allow-level finding
    let analyzer = Analyzer::new();
    for &m in &[
        ModelId::Gpt2,
        ModelId::Bert,
        ModelId::Llama2_7b,
        ModelId::VitBase16,
    ] {
        let g = m.build(1, Scale::Tiny).unwrap();
        let report = analyzer.analyze(&g);
        let attn = report.findings(Lint::FuseAttention);
        assert!(!attn.is_empty(), "{m}: no attention prologue found");
        assert!(attn.iter().all(|d| d.severity == Severity::Allow), "{m}");
    }
}

#[test]
fn convnets_expose_conv_bn_relu_opportunities() {
    let analyzer = Analyzer::new();
    for &m in &[ModelId::ResNet50, ModelId::MobileNetV2] {
        let g = m.build(1, Scale::Tiny).unwrap();
        let report = analyzer.analyze(&g);
        assert!(
            !report.findings(Lint::FuseConvBnRelu).is_empty(),
            "{m}: no conv->bn->relu triple found"
        );
    }
}

#[test]
fn census_fractions_match_the_papers_nongemm_story() {
    // the paper's premise: non-GEMM operators are the majority of nodes
    let analyzer = Analyzer::new();
    for &m in ModelId::all() {
        let g = m.build(1, Scale::Full).unwrap();
        let report = analyzer.analyze(&g);
        assert!(
            report.census.non_gemm_fraction() > 0.5,
            "{m}: non-GEMM fraction {:.2} unexpectedly low",
            report.census.non_gemm_fraction()
        );
    }
}
