//! # ngb-microbench
//!
//! The MicroBench flow of NonGEMM Bench (paper §3.2.3): a registry of
//! non-GEMM operator instances *harvested from real end-to-end traces* —
//! operator, concrete input shapes, and parent model — replayed standalone
//! with synthetic tensors of the recorded shapes.
//!
//! The paper ships 1460 such operator instances collected from its model
//! suite; [`OperatorRegistry::harvest_suite`] rebuilds the equivalent
//! registry from this reproduction's 18 model graphs.
//!
//! # Examples
//!
//! ```
//! use ngb_microbench::OperatorRegistry;
//! use ngb_models::{ModelId, Scale};
//!
//! let graph = ModelId::Gpt2.build(1, Scale::Tiny)?;
//! let mut reg = OperatorRegistry::new();
//! reg.harvest(&graph);
//! assert!(reg.len() > 10);
//! let stats = reg.group_stats();
//! assert!(stats.contains_key("Memory"));
//! # Ok::<(), ngb_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::time::Instant;

use ngb_exec::Interpreter;
use ngb_graph::{Graph, GraphBuilder, OpClass, OpKind};
use ngb_platform::DeviceModel;
use serde::{Deserialize, Serialize};

/// One harvested non-GEMM operator instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpRecord {
    /// The operator with its attributes.
    pub op: OpKind,
    /// Concrete input shapes recorded from the end-to-end trace.
    pub input_shapes: Vec<Vec<usize>>,
    /// Model the instance was captured from.
    pub model: String,
    /// Scope name of the capturing node.
    pub node_name: String,
}

impl OpRecord {
    /// Dedup key: operator identity + input shapes + parent model. The
    /// registry stores each operator *as implemented in its parent model*
    /// (paper §3.2.3), so the same shape occurring in two models is two
    /// records, while repeats within one model collapse.
    fn key(&self) -> String {
        format!("{}|{:?}|{:?}", self.model, self.op, self.input_shapes)
    }

    /// Builds a standalone single-op graph for this record.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors (harvested records are valid by
    /// construction).
    pub fn to_graph(&self) -> Result<Graph, ngb_tensor::TensorError> {
        let mut b = GraphBuilder::new(format!("micro_{}", self.op.name()));
        let inputs: Vec<_> = self
            .input_shapes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // NMS consumes (boxes, scores); scores arrive as plain f32
                // inputs, embeddings need ids
                if matches!(self.op, OpKind::Embedding { .. }) && i == 0 {
                    let vocab = match self.op {
                        OpKind::Embedding { vocab, .. } => vocab,
                        _ => unreachable!(),
                    };
                    b.input_ids(s, vocab)
                } else {
                    b.input(s)
                }
            })
            .collect();
        b.push(self.op.clone(), &inputs, "op")?;
        Ok(b.finish())
    }
}

/// Result of replaying one record.
#[derive(Debug, Clone, Serialize)]
pub struct MicroResult {
    /// Operator short name.
    pub op: &'static str,
    /// Parent model.
    pub model: String,
    /// Input shapes replayed.
    pub input_shapes: Vec<Vec<usize>>,
    /// Best-of-N measured host latency, seconds (`None` in analytic mode).
    pub measured_s: Option<f64>,
    /// Analytic latency on the chosen device, seconds.
    pub analytic_s: f64,
    /// Analytic energy, joules.
    pub analytic_j: f64,
}

/// The microbench operator registry (paper Figure 4 "NonGEMM Bench
/// Operators Registry").
#[derive(Debug, Default)]
pub struct OperatorRegistry {
    records: Vec<OpRecord>,
    seen: std::collections::BTreeSet<String>,
}

impl OperatorRegistry {
    /// An empty registry.
    pub fn new() -> OperatorRegistry {
        OperatorRegistry::default()
    }

    /// Number of unique records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates the records.
    pub fn iter(&self) -> std::slice::Iter<'_, OpRecord> {
        self.records.iter()
    }

    /// Harvests every **non-GEMM** operator instance of `graph` (the
    /// MicroBench Extractor of Figure 4). Returns how many new unique
    /// records were added.
    pub fn harvest(&mut self, graph: &Graph) -> usize {
        let mut added = 0;
        for node in graph.iter() {
            if matches!(node.op, OpKind::Input | OpKind::InputIds { .. }) {
                continue;
            }
            let input_shapes: Vec<Vec<usize>> = node
                .inputs
                .iter()
                .map(|&i| graph.node(i).out_shape.clone())
                .collect();
            if input_shapes.is_empty() {
                continue;
            }
            // Optimized graphs pack primitives into fused nodes; harvest the
            // stages so the registry is the same at every opt level.
            if let OpKind::Fused(f) = &node.op {
                let _ = ngb_graph::walk_fused(f, &input_shapes, |stage, stage_in, _| {
                    if stage.op.class().is_gemm() {
                        return;
                    }
                    added += self.record(OpRecord {
                        op: stage.op.clone(),
                        input_shapes: stage_in.to_vec(),
                        model: graph.name.clone(),
                        node_name: node.name.clone(),
                    });
                });
                continue;
            }
            if node.class().is_gemm() {
                continue;
            }
            added += self.record(OpRecord {
                op: node.op.clone(),
                input_shapes,
                model: graph.name.clone(),
                node_name: node.name.clone(),
            });
        }
        added
    }

    /// Inserts one record if its dedup key is new; returns how many were
    /// added (0 or 1).
    fn record(&mut self, record: OpRecord) -> usize {
        if self.seen.insert(record.key()) {
            self.records.push(record);
            1
        } else {
            0
        }
    }

    /// Harvests a whole model suite (e.g. all 18 Table 1 graphs).
    pub fn harvest_suite<'a>(&mut self, graphs: impl IntoIterator<Item = &'a Graph>) -> usize {
        graphs.into_iter().map(|g| self.harvest(g)).sum()
    }

    /// Record count per non-GEMM group label.
    pub fn group_stats(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            if let OpClass::NonGemm(g) = r.op.class() {
                *m.entry(g.label()).or_insert(0) += 1;
            }
        }
        m
    }

    /// Distinct operator names per group (the paper's "operator variants"
    /// statistic).
    pub fn variant_stats(&self) -> BTreeMap<&'static str, usize> {
        let mut sets: BTreeMap<&'static str, std::collections::BTreeSet<&'static str>> =
            BTreeMap::new();
        for r in &self.records {
            if let OpClass::NonGemm(g) = r.op.class() {
                sets.entry(g.label()).or_default().insert(r.op.name());
            }
        }
        sets.into_iter().map(|(k, v)| (k, v.len())).collect()
    }

    /// Replays one record: real execution on the host (best of
    /// `iterations`) plus the analytic latency/energy on `device`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction or kernel errors.
    pub fn replay(
        &self,
        record: &OpRecord,
        iterations: usize,
        device: &DeviceModel,
    ) -> Result<MicroResult, ngb_tensor::TensorError> {
        let graph = record.to_graph()?;
        let interp = Interpreter::new(0x31c);
        let mut best = f64::INFINITY;
        for _ in 0..iterations.max(1) {
            let start = Instant::now();
            interp.run(&graph)?;
            best = best.min(start.elapsed().as_secs_f64());
        }
        Ok(self.analytic_result(record, device, Some(best)))
    }

    /// Analytic-only evaluation of one record on `device`.
    pub fn evaluate(&self, record: &OpRecord, device: &DeviceModel) -> MicroResult {
        self.analytic_result(record, device, None)
    }

    /// Aggregates analytic latency per non-GEMM group across the whole
    /// registry on `device` — the microbench-level counterpart of the
    /// end-to-end group breakdowns.
    pub fn group_latency(&self, device: &DeviceModel) -> BTreeMap<&'static str, f64> {
        let mut m: BTreeMap<&'static str, f64> = BTreeMap::new();
        for r in &self.records {
            if let OpClass::NonGemm(g) = r.op.class() {
                let res = self.evaluate(r, device);
                *m.entry(g.label()).or_insert(0.0) += res.analytic_s;
            }
        }
        m
    }

    /// Serializes the registry to JSON (the persisted artifact the paper
    /// ships alongside the benchmark).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.records).expect("records always serialize")
    }

    /// Restores a registry from [`OperatorRegistry::to_json`] output,
    /// re-deduplicating on load.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> Result<OperatorRegistry, serde_json::Error> {
        let records: Vec<OpRecord> = serde_json::from_str(json)?;
        let mut reg = OperatorRegistry::new();
        for record in records {
            if reg.seen.insert(record.key()) {
                reg.records.push(record);
            }
        }
        Ok(reg)
    }

    fn analytic_result(
        &self,
        record: &OpRecord,
        device: &DeviceModel,
        measured_s: Option<f64>,
    ) -> MicroResult {
        let out = ngb_graph::infer_shape(&record.op, &record.input_shapes)
            .unwrap_or_else(|_| record.input_shapes[0].clone());
        let cost = ngb_graph::op_cost(&record.op, &record.input_shapes, &out);
        let analytic_s = device.op_latency(&cost, record.op.class().is_gemm());
        MicroResult {
            op: record.op.name(),
            model: record.model.clone(),
            input_shapes: record.input_shapes.clone(),
            measured_s,
            analytic_s,
            analytic_j: device.energy(analytic_s, 0.35),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngb_models::{ModelId, Scale};

    #[test]
    fn group_latency_aggregates_positive_totals() {
        let g = ModelId::Segformer.build(1, Scale::Tiny).unwrap();
        let mut reg = OperatorRegistry::new();
        reg.harvest(&g);
        let by_group = reg.group_latency(&DeviceModel::a100());
        assert!(by_group.values().all(|&v| v >= 0.0));
        assert!(by_group.values().sum::<f64>() > 0.0);
        // groups present in the stats appear in the latency map
        for group in reg.group_stats().keys() {
            assert!(by_group.contains_key(group), "missing {group}");
        }
    }

    #[test]
    fn registry_json_roundtrip() {
        let g = ModelId::Llama2_7b.build(1, Scale::Tiny).unwrap();
        let mut reg = OperatorRegistry::new();
        reg.harvest(&g);
        let json = reg.to_json();
        let back = OperatorRegistry::from_json(&json).unwrap();
        assert_eq!(back.len(), reg.len());
        assert_eq!(back.group_stats(), reg.group_stats());
        // loading twice-concatenated data dedups
        assert!(OperatorRegistry::from_json("not json").is_err());
    }

    #[test]
    fn harvest_dedups_and_skips_gemm() {
        let g = ModelId::Gpt2.build(1, Scale::Tiny).unwrap();
        let mut reg = OperatorRegistry::new();
        let added = reg.harvest(&g);
        assert!(added > 10);
        // re-harvesting the same graph adds nothing
        assert_eq!(reg.harvest(&g), 0);
        assert!(reg.iter().all(|r| !r.op.class().is_gemm()));
    }

    #[test]
    fn suite_harvest_accumulates_across_models() {
        let mut reg = OperatorRegistry::new();
        let graphs: Vec<_> = [ModelId::Gpt2, ModelId::Bert, ModelId::ResNet50]
            .iter()
            .map(|m| m.build(1, Scale::Tiny).unwrap())
            .collect();
        let added = reg.harvest_suite(graphs.iter());
        assert_eq!(added, reg.len());
        let stats = reg.group_stats();
        assert!(stats["Normalization"] > 0);
        assert!(stats["Memory"] > 0);
        let variants = reg.variant_stats();
        assert!(variants["Normalization"] >= 2, "{variants:?}"); // layer_norm + batch_norm2d
    }

    #[test]
    fn replay_measures_and_estimates() {
        let g = ModelId::Bert.build(1, Scale::Tiny).unwrap();
        let mut reg = OperatorRegistry::new();
        reg.harvest(&g);
        let rec = reg
            .iter()
            .find(|r| r.op.name() == "layer_norm")
            .unwrap()
            .clone();
        let res = reg.replay(&rec, 2, &DeviceModel::a100()).unwrap();
        assert!(res.measured_s.unwrap() > 0.0);
        assert!(res.analytic_s > 0.0);
        assert!(res.analytic_j > 0.0);
        let res2 = reg.evaluate(&rec, &DeviceModel::epyc7763());
        assert!(res2.measured_s.is_none());
        // this tiny layer_norm is launch-bound on the GPU, so the CPU wins —
        // exactly the small-kernel effect the paper studies
        assert!(res2.analytic_s < res.analytic_s);
    }

    #[test]
    fn fused_graphs_harvest_their_primitive_stages() {
        let g = ModelId::ResNet50.build(1, Scale::Tiny).unwrap();
        let (opt, report) = ngb_opt::optimize(&g, ngb_opt::OptLevel::O2);
        assert!(report.fusions() > 0);

        let mut base = OperatorRegistry::new();
        base.harvest(&g);
        let mut fused = OperatorRegistry::new();
        fused.harvest(&opt);

        // no fused umbrella op leaks into the registry — only primitives
        assert!(fused.iter().all(|r| !r.op.name().starts_with("fused")));
        // the activation epilogues folded into conv/linear nodes still
        // surface as standalone records, so the registry stays comparable
        // across opt levels
        let base_stats = base.group_stats();
        let fused_stats = fused.group_stats();
        assert!(fused_stats.get("Activation").copied().unwrap_or(0) > 0);
        assert_eq!(
            base_stats.get("Normalization").copied().unwrap_or(0) > 0,
            fused_stats.get("Normalization").copied().unwrap_or(0) > 0
        );
    }

    #[test]
    fn records_rebuild_runnable_graphs() {
        let g = ModelId::Segformer.build(1, Scale::Tiny).unwrap();
        let mut reg = OperatorRegistry::new();
        reg.harvest(&g);
        let mut executed = 0;
        for rec in reg.iter().take(20) {
            let micro = rec.to_graph().unwrap();
            if Interpreter::new(1).run(&micro).is_ok() {
                executed += 1;
            }
        }
        assert!(executed >= 18, "only {executed}/20 micro graphs executed");
    }
}
