#!/usr/bin/env bash
# Repository CI gate, split into named stages with per-stage timing.
#
#   scripts/ci.sh                  # run every stage
#   CI_STAGES=clippy scripts/ci.sh # rerun a single stage
#   CI_STAGES=test-opt,regress scripts/ci.sh
#
# Stages: fmt, clippy, test, test-parallel, test-opt, test-intraop,
# regress.
# The regress stage writes target/ci/regress-report.{json,txt} so CI can
# upload the diff report as an artifact; tune it with NGB_NO_WALLCLOCK=1
# (skip the measured smoke channel) or NGB_WALLCLOCK_FACTOR=<f> (extra
# noise headroom on slow runners).
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES="fmt,clippy,test,test-parallel,test-opt,test-intraop,regress"
STAGES="${CI_STAGES:-$ALL_STAGES}"

want() { [[ ",$STAGES," == *",$1,"* ]]; }

run_stage() {
  local name="$1"
  shift
  if ! want "$name"; then
    echo "==> [$name] skipped (CI_STAGES=$STAGES)"
    return 0
  fi
  echo "==> [$name] $*"
  local start=$SECONDS
  "$@"
  echo "==> [$name] ok (+$((SECONDS - start))s)"
}

regress_gate() {
  mkdir -p target/ci
  cargo build --release -q --bin nongemm-cli
  ./target/release/nongemm-cli ci --check \
    --report target/ci/regress-report.json | tee target/ci/regress-report.txt
}

run_stage fmt           cargo fmt --all -- --check
run_stage clippy        cargo clippy --all-targets -- -D warnings
run_stage test          cargo test -q
run_stage test-parallel env NGB_THREADS=4 cargo test -q
run_stage test-opt      env NGB_OPT=2 NGB_THREADS=4 cargo test -q
run_stage test-intraop  env NGB_INTRAOP=1 NGB_THREADS=4 cargo test -q
run_stage regress       regress_gate

echo "==> ok (stages: $STAGES, total ${SECONDS}s)"
