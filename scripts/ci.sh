#!/usr/bin/env bash
# Repository CI gate, split into named stages with per-stage timing.
#
#   scripts/ci.sh                  # run every stage
#   CI_STAGES=clippy scripts/ci.sh # rerun a single stage
#   CI_STAGES=test-opt,regress scripts/ci.sh
#
# Stages: fmt, clippy, test, test-parallel, test-opt, test-intraop,
# sanitize, serve, decode, shard, contiguous-ratchet, regress.
# Unknown stage names in CI_STAGES exit 2 with the valid list, so a typo
# never silently skips every gate.
# The contiguous-ratchet stage pins the declared list of eager
# .contiguous() call sites in ngb-ops kernels: strided consumption is the
# default, and a new materialization site fails CI until it is justified
# and added to the fallback list here.
# The sanitize stage audits that unsafe code stays confined to ngb-ops
# and ngb-exec, lints the verifier crate at -D warnings, and runs the
# 18-model hazard sweep (static verifier + shadow-memory execution) on a
# multi-threaded engine with intra-op parallelism on.
# The serve stage boots the inference service on a tiny model, fires a
# short open-loop loadgen burst, and asserts completions > 0 with zero
# failures and a clean drain; the sweep summary lands in
# target/ci/BENCH_SERVE.json for artifact upload.
# The decode stage greedy-decodes 32 tokens on tiny gpt2 and llama2 and
# asserts the cached KV path is bit-identical to the uncached recompute,
# the int8 weight-quantized path stays within its documented tolerance,
# and throughput is positive; the batch sweep lands in
# target/ci/BENCH_DECODE.json for artifact upload.
# The shard stage partitions all 18 tiny models across 2- and 4-device
# rosters with both the pipeline and tensor strategies, executes every
# plan on per-device threads, and fails unless each run is bit-identical
# to single-device execution; modeled + executed stage times, bubbles,
# and transfer bytes land in target/ci/BENCH_SHARD.json for upload.
# The regress stage writes target/ci/regress-report.{json,txt} so CI can
# upload the diff report as an artifact; tune it with NGB_NO_WALLCLOCK=1
# (skip the measured smoke channel) or NGB_WALLCLOCK_FACTOR=<f> (extra
# noise headroom on slow runners).
# Each run ends with a per-stage timing table, also appended to
# $GITHUB_STEP_SUMMARY when set (the workflow's job summary).
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES="fmt,clippy,test,test-parallel,test-opt,test-intraop,sanitize,serve,decode,shard,contiguous-ratchet,regress"
STAGES="${CI_STAGES:-$ALL_STAGES}"

# reject unknown stage names up front: a typo in CI_STAGES must fail
# loudly, not skip every stage and report success
IFS=',' read -ra _requested <<<"$STAGES"
for _stage in "${_requested[@]}"; do
  [[ -z "$_stage" ]] && continue
  if [[ ",$ALL_STAGES," != *",$_stage,"* ]]; then
    echo "error: unknown stage '$_stage' (valid stages: $ALL_STAGES)" >&2
    exit 2
  fi
done

want() { [[ ",$STAGES," == *",$1,"* ]]; }

# per-stage timing collected for the summary table: "name<TAB>status<TAB>secs"
STAGE_TIMINGS=()

run_stage() {
  local name="$1"
  shift
  if ! want "$name"; then
    echo "==> [$name] skipped (CI_STAGES=$STAGES)"
    STAGE_TIMINGS+=("$name	skipped	0")
    return 0
  fi
  echo "==> [$name] $*"
  local start=$SECONDS
  "$@"
  local took=$((SECONDS - start))
  echo "==> [$name] ok (+${took}s)"
  STAGE_TIMINGS+=("$name	ok	$took")
}

print_summary() {
  local row name status secs
  echo
  echo "stage timing summary:"
  printf '  %-20s %-8s %s\n' "stage" "status" "seconds"
  for row in "${STAGE_TIMINGS[@]}"; do
    IFS=$'\t' read -r name status secs <<<"$row"
    printf '  %-20s %-8s %s\n' "$name" "$status" "$secs"
  done
  if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    {
      echo "### CI stage timings"
      echo
      echo "| stage | status | seconds |"
      echo "| --- | --- | --- |"
      for row in "${STAGE_TIMINGS[@]}"; do
        IFS=$'\t' read -r name status secs <<<"$row"
        echo "| $name | $status | $secs |"
      done
    } >>"$GITHUB_STEP_SUMMARY"
  fi
}

regress_gate() {
  mkdir -p target/ci
  cargo build --release -q --bin nongemm-cli
  ./target/release/nongemm-cli ci --check \
    --report target/ci/regress-report.json | tee target/ci/regress-report.txt
}

sanitize_gate() {
  # unsafe code is allowed only in the two crates whose kernels need it;
  # every other crate root must carry #![forbid(unsafe_code)]
  local crate root
  for root in crates/*/src/lib.rs; do
    crate=$(basename "$(dirname "$(dirname "$root")")")
    case "$crate" in
      ops|exec) continue ;;
    esac
    grep -q '#!\[forbid(unsafe_code)\]' "$root" \
      || { echo "error: $root is missing #![forbid(unsafe_code)]"; return 1; }
  done
  if grep -rln 'unsafe ' crates/*/src --include='*.rs' \
      | grep -v -e '^crates/ops/' -e '^crates/exec/'; then
    echo "error: unsafe code outside ngb-ops/ngb-exec (see files above)"
    return 1
  fi
  cargo clippy -q -p ngb-sanitize --all-targets -- -D warnings
  cargo build --release -q --bin nongemm-cli
  env NGB_THREADS=4 NGB_INTRAOP=1 \
    ./target/release/nongemm-cli sanitize --tiny
}

serve_gate() {
  mkdir -p target/ci
  cargo build --release -q --bin nongemm-cli --bin loadgen
  local log=target/ci/serve.log rc=0
  # ephemeral port: the server prints "ngb-serve listening on host:port"
  # on stdout, scraped below so parallel CI jobs never collide
  ./target/release/nongemm-cli serve --tiny --max-batch 8 \
    --batch-wait-us 4000 >"$log" 2>&1 &
  local server_pid=$!
  local addr=""
  for _ in $(seq 50); do
    addr=$(sed -n 's/^ngb-serve listening on //p' "$log" | head -n1)
    [[ -n "$addr" ]] && break
    kill -0 "$server_pid" 2>/dev/null \
      || { echo "error: server died at startup"; cat "$log"; return 1; }
    sleep 0.1
  done
  [[ -n "$addr" ]] || { echo "error: server never reported an address"; cat "$log"; return 1; }
  ./target/release/loadgen --addr "$addr" --rate 50 --rate 200 \
    --duration-ms 600 --model bert --seed 7 \
    --summary target/ci/BENCH_SERVE.json --shutdown --fail-on-error || rc=$?
  # the server must drain and exit 0 once loadgen sends shutdown
  wait "$server_pid" || { echo "error: server exited non-zero"; cat "$log"; return 1; }
  cat "$log"
  [[ $rc -eq 0 ]] || { echo "error: loadgen failed (rc=$rc)"; return 1; }
  # batching must actually engage: some sweep point formed a batch > 1
  grep -q '"max_batch": *\([2-9]\|[0-9][0-9]\)' target/ci/BENCH_SERVE.json \
    || { echo "error: no dynamic batch larger than 1 was formed"; return 1; }
}

decode_gate() {
  mkdir -p target/ci
  cargo build --release -q --bin decode_sweep --bin nongemm-cli
  # decode_sweep exits non-zero unless, for each model, the cached path
  # is bit-identical to the uncached recompute, int8 stays within its
  # documented tolerance, and every sweep point has positive throughput
  ./target/release/decode_sweep --tokens 32 \
    --out target/ci/BENCH_DECODE.json
  grep -q '"bit_identical": true' target/ci/BENCH_DECODE.json \
    || { echo "error: sweep summary does not record bit identity"; return 1; }
  # the CLI front end must drive the same path end-to-end
  ./target/release/nongemm-cli generate --tiny --max-new-tokens 8 >/dev/null
  env NGB_QUANT=int8 \
    ./target/release/nongemm-cli generate --tiny --model gpt2 --max-new-tokens 8 >/dev/null
}

shard_gate() {
  mkdir -p target/ci
  cargo build --release -q --bin shard_sweep --bin nongemm-cli
  # shard_sweep exits non-zero unless every model, on every roster and
  # under both strategies, executes sharded bit-identically to the
  # single-device interpreter
  ./target/release/shard_sweep --out target/ci/BENCH_SHARD.json
  grep -q '"bit_identical": true' target/ci/BENCH_SHARD.json \
    || { echo "error: sweep summary does not record bit identity"; return 1; }
  # the CLI front end must drive the same path, including a
  # heterogeneous roster and the tensor strategy
  ./target/release/nongemm-cli shard --model gpt2 --tiny \
    --devices gpu+cpu --strategy tensor >/dev/null
}

# Declared eager-materialization fallbacks in ngb-ops kernel code
# (file:reason). Everything else must consume strided operands in place;
# shrinking this list is progress, growing it needs a review.
CONTIGUOUS_ALLOWLIST=(
  "src/embedding.rs:row gather needs a dense table"
  "src/gemm.rs:conv2d weight repack fallback"
  "src/memory.rs:the contiguous/roll ops are defined as copies"
)

contiguous_ratchet() {
  local hits violations=0 allowed f
  # test modules may materialize freely (they build reference copies)
  hits=$(grep -rn '\.contiguous()' crates/ops/src --include='*.rs' \
    | grep -v -e '#\[cfg(test)\]' -e 'mod tests' || true)
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    f=${line#crates/ops/}; f=${f%%:*}:${line#*:}; f=${f%%:*}  # src/<file>.rs
    # call sites inside #[cfg(test)] blocks: approximate by line number
    # being past the file's "mod tests" marker, if it has one
    local test_start
    test_start=$(grep -n 'mod tests' "crates/ops/$f" | head -n1 | cut -d: -f1)
    local lineno; lineno=$(echo "$line" | cut -d: -f2)
    if [[ -n "$test_start" && "$lineno" -gt "$test_start" ]]; then
      continue
    fi
    allowed=""
    for entry in "${CONTIGUOUS_ALLOWLIST[@]}"; do
      [[ "$f" == "${entry%%:*}" ]] && allowed=1 && break
    done
    if [[ -z "$allowed" ]]; then
      echo "error: new eager .contiguous() outside the fallback list: $line"
      violations=1
    fi
  done <<<"$hits"
  [[ $violations -eq 0 ]] || return 1
  echo "contiguous ratchet: all eager call sites are declared fallbacks"
}

run_stage fmt           cargo fmt --all -- --check
run_stage clippy        cargo clippy --all-targets -- -D warnings
run_stage test          cargo test -q
run_stage test-parallel env NGB_THREADS=4 cargo test -q
run_stage test-opt      env NGB_OPT=2 NGB_THREADS=4 cargo test -q
run_stage test-intraop  env NGB_INTRAOP=1 NGB_THREADS=4 cargo test -q
run_stage sanitize      sanitize_gate
run_stage serve         serve_gate
run_stage decode        decode_gate
run_stage shard         shard_gate
run_stage contiguous-ratchet contiguous_ratchet
run_stage regress       regress_gate

print_summary
echo "==> ok (stages: $STAGES, total ${SECONDS}s)"
