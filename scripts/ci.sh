#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> NGB_THREADS=4 cargo test -q (parallel execution engine)"
NGB_THREADS=4 cargo test -q

echo "==> NGB_OPT=2 NGB_THREADS=4 cargo test -q (graph rewriter + parallel engine)"
NGB_OPT=2 NGB_THREADS=4 cargo test -q

echo "==> ok"
