//! MicroBench flow on real, host-executed kernels: harvest operators from
//! an executable tiny model, replay them standalone with measured timing,
//! and contrast fused vs decomposed operator implementations.
//!
//! ```sh
//! cargo run --example operator_microbench --release
//! ```

use nongemm::ops::{activation, normalization};
use nongemm::tensor::random::TensorRng;
use nongemm::{DeviceModel, ModelId, OperatorRegistry, Scale};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. harvest from an executable tiny GPT-2 and replay on the host
    let graph = ModelId::Gpt2.build(1, Scale::Tiny)?;
    let mut registry = OperatorRegistry::new();
    registry.harvest(&graph);
    println!(
        "harvested {} non-GEMM operator instances from tiny GPT-2\n",
        registry.len()
    );

    let a100 = DeviceModel::a100();
    println!(
        "{:<16}{:>14}{:>14}  input shapes",
        "op", "host measured", "A100 analytic"
    );
    for rec in registry.iter().take(10) {
        let res = registry.replay(rec, 5, &a100)?;
        println!(
            "{:<16}{:>12.1}us{:>12.1}us  {:?}",
            res.op,
            res.measured_s.unwrap_or(0.0) * 1e6,
            res.analytic_s * 1e6,
            rec.input_shapes
        );
    }

    // 2. fused vs decomposed, really executed: the §4.1.4 effect on the host
    let x = TensorRng::seed(7).normal(&[1, 64, 4096]);
    let time = |f: &dyn Fn() -> nongemm::tensor::Tensor| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let fused = time(&|| activation::gelu_tanh(&x).expect("f32 input"));
    let decomposed = time(&|| activation::new_gelu(&x).expect("f32 input"));
    println!("\nGELU on [1, 64, 4096] (host):");
    println!("  fused tanh-GELU      {:>8.2} ms", fused * 1e3);
    println!(
        "  HF NewGELU (8 ops)   {:>8.2} ms  ({:.1}x slower)",
        decomposed * 1e3,
        decomposed / fused
    );

    let g = TensorRng::seed(8).uniform(&[4096], 0.9, 1.1);
    let fused_n = time(&|| normalization::rms_norm(&x, &g, 1e-6).expect("valid shapes"));
    let dec_n = time(&|| normalization::llama_rms_norm(&x, &g, 1e-6).expect("valid shapes"));
    println!("\nRMSNorm on [1, 64, 4096] (host):");
    println!("  fused                {:>8.2} ms", fused_n * 1e3);
    println!(
        "  LlamaRMSNorm (6 ops) {:>8.2} ms  ({:.1}x slower)",
        dec_n * 1e3,
        dec_n / fused_n
    );
    Ok(())
}
