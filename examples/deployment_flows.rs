//! Deployment-flow comparison (§4.2): the same GPT-2 graph under PyTorch
//! eager, TorchScript, TorchDynamo, and ONNX Runtime on the A100, showing
//! how the software stack moves the bottleneck between operator groups.
//!
//! ```sh
//! cargo run --example deployment_flows --release
//! ```

use nongemm::{BenchConfig, Flow, NonGemmBench, NonGemmGroup, Platform, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GPT-2 (batch 1) on the data-center A100 under four deployment flows\n");
    println!(
        "{:<18}{:>10}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "flow", "latency", "GEMM", "Act", "Norm", "Memory", "Arith"
    );
    let mut latencies = Vec::new();
    for &flow in Flow::all() {
        let bench = NonGemmBench::new(BenchConfig {
            models: vec!["gpt2".into()],
            platform: Platform::data_center(),
            use_gpu: true,
            flow,
            batch: 1,
            scale: Scale::Full,
            ..BenchConfig::default()
        });
        let p = &bench.run_end_to_end()?[0];
        let b = p.breakdown();
        println!(
            "{:<18}{:>8.2}ms{:>8.1}%{:>8.1}%{:>8.1}%{:>8.1}%{:>8.1}%",
            flow.label(),
            p.total_latency_s() * 1e3,
            b.gemm_frac() * 100.0,
            b.group_frac(NonGemmGroup::Activation) * 100.0,
            b.group_frac(NonGemmGroup::Normalization) * 100.0,
            b.group_frac(NonGemmGroup::Memory) * 100.0,
            b.group_frac(NonGemmGroup::Arithmetic) * 100.0
        );
        latencies.push((flow, p.total_latency_s()));
    }
    println!(
        "\nDynamo's element-wise fusion collapses the decomposed NewGELU chain;\n\
         ORT fuses too but pays CPU fallbacks on layout operators."
    );
    let eager = latencies
        .iter()
        .find(|(f, _)| *f == Flow::Eager)
        .expect("ran")
        .1;
    let dynamo = latencies
        .iter()
        .find(|(f, _)| *f == Flow::Dynamo)
        .expect("ran")
        .1;
    println!("torch.compile speedup over eager: {:.2}x", eager / dynamo);
    Ok(())
}
