//! Plug Model & Profile: register a custom model in the registry (the
//! Table 5 feature that distinguishes NonGEMM Bench), profile it, and
//! harvest its non-GEMM operators into the microbenchmark registry.
//!
//! ```sh
//! cargo run --example custom_model --release
//! ```

use nongemm::graph::{GraphBuilder, OpKind};
use nongemm::{ModelRegistry, OperatorRegistry, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = ModelRegistry::with_presets();

    // A hypothetical "tiny recommender tower": embedding -> MLP with a
    // custom decomposed activation -> softmax head.
    registry.register("rec_tower", |batch| {
        let mut b = GraphBuilder::new("rec_tower");
        let ids = b.input_ids(&[batch, 32], 10_000);
        let emb = b.push(
            OpKind::Embedding {
                vocab: 10_000,
                dim: 64,
            },
            &[ids],
            "embed",
        )?;
        let pooled = b.push(
            OpKind::MeanDim {
                dim: 1,
                keepdim: false,
            },
            &[emb],
            "pool",
        )?;
        let h1 = b.push(
            OpKind::Linear {
                in_f: 64,
                out_f: 128,
                bias: true,
            },
            &[pooled],
            "fc1",
        )?;
        let a1 = b.push(OpKind::NewGelu, &[h1], "act1")?;
        let n1 = b.push(OpKind::LayerNorm { dim: 128 }, &[a1], "norm")?;
        let h2 = b.push(
            OpKind::Linear {
                in_f: 128,
                out_f: 100,
                bias: true,
            },
            &[n1],
            "fc2",
        )?;
        b.push(OpKind::Softmax { dim: 1 }, &[h2], "probs")?;
        Ok(b.finish())
    });

    println!("registry now holds {} models", registry.names().len());

    // Build and profile the custom model like any preset.
    let graph = registry.build("rec_tower", 16)?;
    graph.validate().expect("builder emits valid graphs");
    let profile = nongemm::profiler::profile_analytic(
        &graph,
        &Platform::workstation(),
        nongemm::Flow::Eager,
        true,
        16,
    );
    let b = profile.breakdown();
    println!(
        "rec_tower on the RTX 4090: {:.3} ms end to end, {:.0}% non-GEMM",
        profile.total_latency_s() * 1e3,
        b.non_gemm_frac() * 100.0
    );
    if let Some((group, frac)) = b.dominant_group() {
        println!(
            "most expensive non-GEMM group: {group} ({:.0}% of time)",
            frac * 100.0
        );
    }

    // Harvest its operators into the microbench registry alongside a preset.
    let mut micro = OperatorRegistry::new();
    micro.harvest(&graph);
    micro.harvest(&registry.build("gpt2", 1)?);
    println!(
        "\nmicrobench registry: {} unique non-GEMM operator instances",
        micro.len()
    );
    for (group, count) in micro.group_stats() {
        println!("  {group:<14}{count:>5}");
    }
    Ok(())
}
