//! Quickstart: profile one model end to end and print the three NonGEMM
//! Bench reports.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use nongemm::{BenchConfig, Flow, NonGemmBench, Platform, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Profile ViT-B/16 at batch 1 on the data-center platform (EPYC 7763 +
    // A100 analytic models), PyTorch-eager deployment flow.
    let bench = NonGemmBench::new(BenchConfig {
        models: vec!["vit-b".into()],
        platform: Platform::data_center(),
        use_gpu: true,
        flow: Flow::Eager,
        batch: 1,
        scale: Scale::Full,
        ..BenchConfig::default()
    });

    let reports = bench.reports()?;
    let (perf, workload, non_gemm) = &reports[0];

    println!("== performance / cost report ==");
    println!("{}", perf.to_text());

    println!("== workload report ==");
    println!(
        "model: {} ({} ops, {} params)",
        workload.model, workload.total_ops, workload.params
    );
    for (op, count) in workload.op_histogram.iter().take(8) {
        let shapes = &workload.example_shapes[op];
        println!("  {op:<12} x{count:<4} e.g. {:?}", shapes[0]);
    }

    println!("\n== non-GEMM report ==");
    println!(
        "{} non-GEMM ops vs {} GEMM ops; {} dynamic",
        non_gemm.non_gemm_ops, non_gemm.gemm_ops, non_gemm.dynamic_ops
    );
    for (group, variants) in &non_gemm.group_variants {
        println!("  {group:<16} variants: {}", variants.join(", "));
    }

    // The paper's headline: compare against the CPU-only run.
    let cpu_bench = NonGemmBench::new(BenchConfig {
        models: vec!["vit-b".into()],
        platform: Platform::data_center().cpu_only(),
        use_gpu: false,
        ..BenchConfig::default()
    });
    let cpu = &cpu_bench.run_end_to_end()?[0];
    let gpu = &bench.run_end_to_end()?[0];
    println!(
        "\nnon-GEMM share: {:.0}% on CPU-only -> {:.0}% with the A100",
        cpu.breakdown().non_gemm_frac() * 100.0,
        gpu.breakdown().non_gemm_frac() * 100.0
    );
    Ok(())
}
