//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the slice of the criterion API the bench targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `criterion_group!` / `criterion_main!`) but performs only a short
//! wall-clock measurement per benchmark — no statistics, plots, or
//! baseline storage. Each benchmark runs a warmup pass plus a handful of
//! timed iterations and prints the mean, which keeps `cargo test` (which
//! also builds and runs `harness = false` bench targets) fast.

use std::fmt::Display;
use std::time::Instant;

/// Timed iterations per benchmark (after one warmup call).
const TIMED_ITERS: u32 = 5;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub's fixed iteration count
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels the benchmark with its parameter value.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: p.to_string(),
        }
    }
}

/// Handed to each benchmark closure to time its routine.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over the stub's fixed iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let _ = routine(); // warmup
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            let _ = routine();
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = TIMED_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    let mean_us = if b.iters > 0 {
        b.elapsed_ns as f64 / f64::from(b.iters) / 1e3
    } else {
        0.0
    };
    println!("bench {label:<40} {mean_us:>12.2} us/iter");
}

/// Collects benchmark functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
