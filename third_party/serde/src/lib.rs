//! Offline stand-in for the `serde` crate.
//!
//! The container building this repo has no network access to crates.io, so
//! the workspace vendors a minimal serde replacement. Instead of serde's
//! visitor architecture, types convert to and from a [`Content`] tree — a
//! self-describing value representation that `serde_json` (the vendored
//! one) renders to and parses from JSON text. The `derive` feature
//! re-exports `#[derive(Serialize, Deserialize)]` macros from the vendored
//! `serde_derive`, which generate `to_content`/`from_content` impls with
//! serde's externally-tagged enum layout, so JSON produced here looks like
//! what upstream serde_json would emit for the same types.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// Self-describing value tree: the intermediate form between Rust values
/// and a serialized wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array).
    Seq(Vec<Content>),
    /// Key-value map; keys are arbitrary content but stringify on output.
    Map(Vec<(Content, Content)>),
}

/// The singleton used when a map field is absent, so `Option` fields can
/// deserialize to `None` without allocating.
pub static NULL: Content = Content::Null;

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Converts the content tree into `Self`, with a descriptive error on
    /// shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the expected and found
    /// content kinds.
    fn from_content(c: &Content) -> Result<Self, String>;
}

/// Looks up `name` in a content map, yielding [`NULL`] when absent so
/// optional fields decode to their empty form.
pub fn content_field<'a>(m: &'a [(Content, Content)], name: &str) -> &'a Content {
    m.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
        .map_or(&NULL, |(_, v)| v)
}

fn kind(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::I64(_) | Content::U64(_) => "integer",
        Content::F64(_) => "number",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    }
}

fn mismatch<T>(want: &str, got: &Content) -> Result<T, String> {
    Err(format!("expected {want}, found {}", kind(got)))
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref other => return mismatch("integer", other),
                };
                <$t>::try_from(v).map_err(|_| format!("{v} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => v as u64,
                    ref other => return mismatch("unsigned integer", other),
                };
                <$t>::try_from(v).map_err(|_| format!("{v} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    ref other => mismatch("number", other),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => mismatch("bool", other),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => mismatch("string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => mismatch("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => mismatch("map", other),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::Seq(items) => Ok(($(
                        $t::from_content(
                            items.get($n).ok_or_else(|| format!("tuple too short at {}", $n))?,
                        )?,
                    )+)),
                    other => mismatch("sequence", other),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(c.clone())
    }
}
