//! Recursive-descent JSON parser producing `Content` trees.

use serde::Content;

pub fn parse(s: &str) -> Result<Content, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Content) -> Result<Content, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Content, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // combine a UTF-16 surrogate pair when present
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or("invalid \\u escape")?);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}
