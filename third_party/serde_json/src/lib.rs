//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's `Content` tree to JSON text and parses
//! JSON text back into it, exposing the familiar `to_string` /
//! `to_string_pretty` / `from_str` / `to_value` entry points plus a
//! [`Value`] type with indexing and typed accessors. Numbers are carried
//! as `f64`; integers up to 2^53 round-trip exactly, which covers every
//! count, byte total, and parameter tally this workspace serializes.

use serde::{Content, Deserialize, Serialize};

mod parse;
mod value;
mod write;

pub use value::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_content()))
}

/// Serializes `value` to indented JSON.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_content()))
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_content_tree(&value.to_content()))
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a parse error on malformed JSON, or a shape error when the
/// document doesn't match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse::parse(s).map_err(Error::new)?;
    T::from_content(&content).map_err(Error::new)
}

/// Renders a map key: JSON object keys must be strings, so non-string
/// content keys are stringified through their compact rendering.
fn key_string(k: &Content) -> String {
    match k {
        Content::Str(s) => s.clone(),
        other => write::compact(other),
    }
}
