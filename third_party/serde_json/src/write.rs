//! JSON text rendering for `Content` trees.

use serde::Content;

/// Compact (single-line) rendering.
pub fn compact(c: &Content) -> String {
    let mut out = String::new();
    render(c, None, 0, &mut out);
    out
}

/// Pretty rendering with two-space indentation.
pub fn pretty(c: &Content) -> String {
    let mut out = String::new();
    render(c, Some(2), 0, &mut out);
    out
}

fn render(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&render_f64(*v)),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline(indent, depth, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                escape_into(&crate::key_string(k), out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            }
            if !entries.is_empty() {
                newline(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Rust's `Display` for floats round-trips and never uses exponents, so
/// it is valid JSON as-is; non-finite values have no JSON form and render
/// as `null` like upstream's lossy modes.
fn render_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
