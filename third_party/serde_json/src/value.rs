//! The dynamic [`Value`] type with indexing and typed accessors.

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub(crate) fn from_content_tree(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(*v as f64),
            Content::U64(v) => Value::Number(*v as f64),
            Content::F64(v) => Value::Number(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => {
                Value::Array(items.iter().map(Value::from_content_tree).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (crate::key_string(k), Value::from_content_tree(v)))
                    .collect(),
            ),
        }
    }

    fn to_content_tree(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content_tree).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content_tree()))
                    .collect(),
            ),
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric payload as `u64` when integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Numeric payload as `i64` when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries in insertion order, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` on absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::write::compact(&self.to_content_tree()))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_f64() == Some(*self as f64)
            }
        }
    )*};
}

eq_num!(i32, i64, u32, u64, usize, f32, f64);

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_tree()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(Value::from_content_tree(c))
    }
}
