//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! collection strategies, `Just`, `prop_oneof!`, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` / `prop_assume!` macros.
//! Inputs are drawn from a generator seeded deterministically from the
//! test name, so failures reproduce across runs. There is no shrinking:
//! a failing case reports the assertion message only — cruder than real
//! proptest, but sufficient to exercise the invariants.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; try the next case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic SplitMix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (the test function name).
    pub fn deterministic(label: &str) -> TestRng {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform fraction in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi_incl]`.
    pub fn below(&mut self, lo: u64, hi_incl: u64) -> u64 {
        let span = hi_incl - lo + 1;
        lo + self.next_u64() % span
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from each value of `self`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty alternative list.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(0, self.0.len() as u64 - 1) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + (hi - lo) * rng.unit_f64()) as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo as u64, self.size.hi_incl as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The imports property tests start from.

    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                match __outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), __case, msg);
                    }
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Chooses uniformly between the listed strategies (all arms must share
/// one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {}: {:?} vs {:?}", stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case when its input doesn't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
