//! Offline stand-in for the `rand` crate.
//!
//! The benchmark container has no access to crates.io, so this vendored
//! crate provides exactly the API surface `ngb-tensor` consumes: a seedable
//! `StdRng` and `Uniform` distributions over `f32`/`f64`/`i64`. The
//! generator is SplitMix64 — statistically solid for synthetic-tensor
//! purposes and bit-reproducible from a seed, which is the property the
//! repo's determinism tests rely on. Streams are *not* bit-compatible with
//! the upstream `rand` crate.

/// Core trait for pseudo-random generators (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// The standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // avoid the all-zero fixed point without disturbing other seeds
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod distributions {
    //! Value distributions (subset of `rand::distributions`).

    use super::RngCore;

    /// Sampling interface.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        lo: X,
        hi: X,
    }

    impl<X: PartialOrd + Copy + core::fmt::Debug> Uniform<X> {
        /// Creates the half-open uniform distribution `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics when `lo >= hi`, matching upstream behavior.
        pub fn new(lo: X, hi: X) -> Uniform<X> {
            assert!(
                lo < hi,
                "Uniform::new requires lo < hi, got [{lo:?}, {hi:?})"
            );
            Uniform { lo, hi }
        }
    }

    /// A uniform fraction in `[0, 1)` with 53 bits of precision.
    fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
            let v = self.lo as f64 + (self.hi as f64 - self.lo as f64) * unit_f64(rng);
            // rounding to f32 may land exactly on `hi`; keep the interval open
            (v as f32).clamp(self.lo, f32_prev(self.hi))
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            self.lo + (self.hi - self.lo) * unit_f64(rng)
        }
    }

    impl Distribution<i64> for Uniform<i64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> i64 {
            let span = self.hi.wrapping_sub(self.lo) as u64;
            self.lo.wrapping_add((rng.next_u64() % span) as i64)
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let span = (self.hi - self.lo) as u64;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    /// The largest f32 strictly below `x` (for finite positive spans).
    fn f32_prev(x: f32) -> f32 {
        f32::from_bits(x.to_bits().wrapping_sub(if x > 0.0 { 1 } else { 0 }))
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::SeedableRng;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let u = Uniform::new(-1.0f32, 1.0f32);
        for _ in 0..1000 {
            let (x, y) = (u.sample(&mut a), u.sample(&mut b));
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
        let ui = Uniform::new(0i64, 50i64);
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| (0..50).contains(&ui.sample(&mut r))));
    }
}
