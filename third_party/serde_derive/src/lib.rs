//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde's `Serialize`/`Deserialize`
//! traits (`to_content`/`from_content` over `serde::Content`). The parser
//! walks the raw `TokenStream` directly — no `syn`/`quote`, since those
//! aren't available offline — and supports exactly the shapes this
//! workspace uses: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like. Enums use serde's
//! externally-tagged layout: unit variants serialize as a string, payload
//! variants as a single-entry map keyed by the variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let keyword = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic type `{name}`");
    }
    let shape = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(&collect(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_fields(&collect(g)))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(variants(&collect(g)))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

fn collect(g: &proc_macro::Group) -> Vec<TokenTree> {
    g.stream().into_iter().collect()
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past the current type expression to just after the next
/// top-level comma (commas inside `<...>` or nested groups don't count).
fn skip_to_next_field(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        match &toks[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("expected field name, found {other}"),
        }
        i += 1;
        skip_to_next_field(toks, &mut i);
    }
    fields
}

fn count_fields(toks: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_to_next_field(toks, &mut i);
    }
    count
}

fn variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_fields(&collect(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(named_fields(&collect(g)))
            }
            _ => VariantKind::Unit,
        };
        out.push(Variant { name, kind });
        skip_to_next_field(toks, &mut i);
    }
    out
}

// ---------------------------------------------------------------- codegen

fn str_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Content::Str({}), ::serde::Serialize::to_content(&self.{f}))",
                        str_lit(f)
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(vars) => {
            let mut arms = String::new();
            for v in vars {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Content::Str({}),",
                            str_lit(vn)
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vn}({binds}) => ::serde::Content::Map(vec![\
                             (::serde::Content::Str({tag}), {payload})]),",
                            binds = binds.join(", "),
                            tag = str_lit(vn),
                        );
                    }
                    VariantKind::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str({}), \
                                     ::serde::Serialize::to_content({f}))",
                                    str_lit(f)
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {fields} }} => ::serde::Content::Map(vec![\
                             (::serde::Content::Str({tag}), \
                             ::serde::Content::Map(vec![{entries}]))]),",
                            fields = fields.join(", "),
                            tag = str_lit(vn),
                            entries = entries.join(", "),
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::UnitStruct => format!("{{ let _ = __c; Ok({name}) }}"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Seq(__s) if __s.len() == {n} => \
                         Ok({name}({items})),\n\
                     _ => Err(format!(\"expected sequence of {n} for {name}\")),\n\
                 }}",
                items = items.join(", "),
            )
        }
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content_field(__m, \"{f}\"))\
                         .map_err(|e| format!(\"{name}.{f}: {{e}}\"))?"
                    )
                })
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(__m) => Ok({name} {{ {inits} }}),\n\
                     _ => Err(format!(\"expected map for {name}\")),\n\
                 }}",
                inits = inits.join(", "),
            )
        }
        Shape::Enum(vars) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in vars {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            payload_arms,
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(__v)\
                             .map_err(|e| format!(\"{name}::{vn}: {{e}}\"))?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                            .collect();
                        let _ = write!(
                            payload_arms,
                            "\"{vn}\" => match __v {{\n\
                                 ::serde::Content::Seq(__s) if __s.len() == {n} => \
                                     Ok({name}::{vn}({items})),\n\
                                 _ => Err(format!(\"expected sequence of {n} for {name}::{vn}\")),\n\
                             }},",
                            items = items.join(", "),
                        );
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(\
                                     ::serde::content_field(__fm, \"{f}\"))\
                                     .map_err(|e| format!(\"{name}::{vn}.{f}: {{e}}\"))?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            payload_arms,
                            "\"{vn}\" => match __v {{\n\
                                 ::serde::Content::Map(__fm) => Ok({name}::{vn} {{ {inits} }}),\n\
                                 _ => Err(format!(\"expected field map for {name}::{vn}\")),\n\
                             }},",
                            inits = inits.join(", "),
                        );
                    }
                }
            }
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(format!(\"unknown variant {{__other}} for {name}\")),\n\
                     }},\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __v) = &__m[0];\n\
                         let __tag = match __k {{\n\
                             ::serde::Content::Str(s) => s.as_str(),\n\
                             _ => return Err(format!(\"non-string variant tag for {name}\")),\n\
                         }};\n\
                         match __tag {{\n\
                             {payload_arms}\n\
                             __other => Err(format!(\"unknown variant {{__other}} for {name}\")),\n\
                         }}\n\
                     }},\n\
                     _ => Err(format!(\"expected variant encoding for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::std::string::String> {{ {body} }}\n\
         }}\n"
    )
}
