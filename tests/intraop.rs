//! Determinism contract of intra-op data parallelism: chunk partitioning
//! is a pure function of shape (never of thread count), and disabling the
//! runner only serializes the same chunks. Consequently every registry
//! model must produce bit-identical outputs across {intra-op off, on} ×
//! {1, 2, 8} worker threads × {O0, O2} rewrite levels.

use nongemm::exec::{Engine, Interpreter};
use nongemm::{optimize, ModelId, OptLevel, Scale};

/// Output bit patterns: NaN-safe equality (`NaN != NaN` under `f32` eq).
/// Integer/bool outputs (token ids, NMS keeps) widen into the same space.
fn bits(trace: &nongemm::exec::ExecutionTrace) -> Vec<(usize, Vec<usize>, Vec<u64>)> {
    trace
        .outputs
        .iter()
        .map(|(id, t)| {
            let b = if let Ok(v) = t.to_vec_f32() {
                v.iter().map(|x| u64::from(x.to_bits())).collect()
            } else if let Ok(v) = t.to_vec_i64() {
                v.iter().map(|&x| x as u64).collect()
            } else {
                t.to_vec_bool()
                    .expect("f32, i64, or bool outputs")
                    .iter()
                    .map(|&x| u64::from(x))
                    .collect()
            };
            (id.0, t.shape().to_vec(), b)
        })
        .collect()
}

#[test]
fn every_model_is_bit_identical_across_intra_op_modes() {
    for &model in ModelId::all() {
        let base = model
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        for level in [OptLevel::O0, OptLevel::O2] {
            let (g, _) = optimize(&base, level);
            let want = bits(
                &Interpreter::default()
                    .intra_op(false)
                    .run(&g)
                    .unwrap_or_else(|e| panic!("{model} {level:?} (sequential): {e}")),
            );
            assert!(!want.is_empty(), "{model} {level:?}: no outputs");
            for intra_op in [false, true] {
                for threads in [1usize, 2, 8] {
                    let trace = Interpreter::default()
                        .engine(Engine::Parallel(threads))
                        .intra_op(intra_op)
                        .run(&g)
                        .unwrap_or_else(|e| {
                            panic!("{model} {level:?} (intra {intra_op}, {threads}t): {e}")
                        });
                    assert_eq!(
                        want,
                        bits(&trace),
                        "{model} {level:?}: intra-op {intra_op} on {threads} threads diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn sequential_interpreter_ignores_intra_op_runner_absence() {
    // intra-op on the sequential engine still partitions (chunk counts are
    // shape-pure) but runs chunks in place; outputs cannot move.
    let g = ModelId::Gpt2.build(1, Scale::Tiny).unwrap();
    let off = bits(&Interpreter::default().intra_op(false).run(&g).unwrap());
    let on = bits(&Interpreter::default().intra_op(true).run(&g).unwrap());
    assert_eq!(off, on);
}
