//! Reproduction checks for the paper's qualitative claims (§4, Tables 4–5,
//! Figures 1 and 5–8). These are the *shape* assertions EXPERIMENTS.md is
//! built from: who dominates, in which direction ratios move — not
//! absolute latencies.

use nongemm::{
    BenchConfig, Breakdown, Flow, ModelId, NonGemmBench, NonGemmGroup, OptLevel, Platform, Scale,
    Task,
};

// The paper profiles the *unoptimized* eager graphs, so these checks pin
// `-O0` rather than honoring `NGB_OPT`: Conv+BN folding at `-O2` really
// does erase the Normalization time §4.1.2 measures — that's the
// optimizer working, not the claim breaking.
fn breakdown(alias: &str, platform: Platform, gpu: bool, flow: Flow, batch: usize) -> Breakdown {
    let bench = NonGemmBench::new(BenchConfig {
        models: vec![alias.into()],
        platform,
        use_gpu: gpu,
        flow,
        batch,
        scale: Scale::Full,
        opt_level: Some(OptLevel::O0),
        ..BenchConfig::default()
    });
    bench.run_end_to_end().expect("suite models profile")[0].breakdown()
}

fn latency(alias: &str, platform: Platform, gpu: bool) -> f64 {
    let bench = NonGemmBench::new(BenchConfig {
        models: vec![alias.into()],
        platform,
        use_gpu: gpu,
        opt_level: Some(OptLevel::O0),
        ..BenchConfig::default()
    });
    bench.run_end_to_end().expect("suite models profile")[0].total_latency_s()
}

/// Figure 1 + §1: GEMMs dominate on CPUs (49–94% of time) and GPU
/// acceleration collapses end-to-end latency.
#[test]
fn fig1_gemm_dominates_cpu_and_gpu_accelerates() {
    for alias in ["gpt2-xl", "vit-l"] {
        let cpu = breakdown(
            alias,
            Platform::data_center().cpu_only(),
            false,
            Flow::Eager,
            1,
        );
        assert!(
            cpu.gemm_frac() > 0.49,
            "{alias}: CPU GEMM share {:.2} below the paper's 49% floor",
            cpu.gemm_frac()
        );
        let t_cpu = latency(alias, Platform::data_center().cpu_only(), false);
        let t_gpu = latency(alias, Platform::data_center(), true);
        assert!(
            t_gpu < t_cpu / 1.5,
            "{alias}: GPU must clearly beat the CPU"
        );
    }
}

/// §4.3 bullet 1: averaged over the suite, the non-GEMM share grows from
/// ~27% (CPU-only) into the ~55%+ band with a GPU.
#[test]
fn headline_non_gemm_share_shift() {
    let mut cpu = Vec::new();
    let mut gpu = Vec::new();
    for &m in ModelId::all() {
        let alias = m.spec().alias;
        cpu.push(
            breakdown(
                alias,
                Platform::data_center().cpu_only(),
                false,
                Flow::Eager,
                1,
            )
            .non_gemm_frac(),
        );
        gpu.push(breakdown(alias, Platform::data_center(), true, Flow::Eager, 1).non_gemm_frac());
    }
    let cpu_avg = cpu.iter().sum::<f64>() / cpu.len() as f64;
    let gpu_avg = gpu.iter().sum::<f64>() / gpu.len() as f64;
    assert!(
        (0.15..0.45).contains(&cpu_avg),
        "CPU avg {cpu_avg:.2} (paper 0.27)"
    );
    assert!(
        (0.45..0.75).contains(&gpu_avg),
        "GPU avg {gpu_avg:.2} (paper 0.55)"
    );
    assert!(gpu_avg > cpu_avg + 0.15);
}

/// Figure 5 / §4.1.1: per-model non-GEMM growth after acceleration for the
/// vision transformers the paper quotes.
#[test]
fn fig5_vision_transformers_shift_to_non_gemm() {
    for (alias, paper_gpu_share) in [("vit-b", 0.60), ("vit-l", 0.55), ("sw-s", 0.55)] {
        let cpu = breakdown(
            alias,
            Platform::data_center().cpu_only(),
            false,
            Flow::Eager,
            1,
        );
        let gpu = breakdown(alias, Platform::data_center(), true, Flow::Eager, 1);
        assert!(
            gpu.non_gemm_frac() > cpu.non_gemm_frac(),
            "{alias}: acceleration must raise the non-GEMM share"
        );
        // within ±15 points of the paper's reported share
        assert!(
            (gpu.non_gemm_frac() - paper_gpu_share).abs() < 0.15,
            "{alias}: GPU non-GEMM {:.2} vs paper {paper_gpu_share:.2}",
            gpu.non_gemm_frac()
        );
    }
}

/// §4.1.1: the batch-size effect — ViT-Huge keeps a larger GEMM share
/// than ViT-Base at the same batch (bigger GEMMs amortize overheads).
#[test]
fn bigger_models_stay_gemm_heavier() {
    let huge = breakdown("vit-h", Platform::data_center(), true, Flow::Eager, 8);
    let base = breakdown("vit-b", Platform::data_center(), true, Flow::Eager, 8);
    assert!(huge.gemm_frac() > base.gemm_frac());
}

/// §4.1.1: increasing the batch size raises the GEMM share (overheads
/// amortize over more useful work).
#[test]
fn batch_size_amortizes_non_gemm() {
    // vision at batch 8; language models at the paper's batch 64 (at small
    // batches LLM GEMMs are weight-streaming-bound, so only large batches
    // move the needle — the same effect Table 4's batch-64 rows show)
    for (alias, big) in [("vit-l", 8), ("gpt2", 64), ("bert", 64)] {
        let b1 = breakdown(alias, Platform::data_center(), true, Flow::Eager, 1);
        let bn = breakdown(alias, Platform::data_center(), true, Flow::Eager, big);
        assert!(
            bn.gemm_frac() > b1.gemm_frac(),
            "{alias}: batch {big} GEMM {:.2} should exceed batch 1 {:.2}",
            bn.gemm_frac(),
            b1.gemm_frac()
        );
    }
}

/// §4.1.2: detection models become non-GEMM-dominated on the GPU, and the
/// dominant group is Normalization (the custom FrozenBatchNorm2d).
#[test]
fn detection_dominated_by_normalization() {
    for alias in ["frcnn", "mrcnn", "detr"] {
        let b = breakdown(alias, Platform::data_center(), true, Flow::Eager, 1);
        assert!(
            b.non_gemm_frac() > 0.55,
            "{alias}: non-GEMM {:.2}",
            b.non_gemm_frac()
        );
        let (group, frac) = b.dominant_group().expect("has non-GEMM ops");
        assert_eq!(
            group,
            NonGemmGroup::Normalization,
            "{alias} dominated by {group}"
        );
        assert!(frac > 0.25, "{alias}: Norm share {frac:.2} (paper 40–60%)");
    }
}

/// §4.1.4 / Table 4: GPT-2's top non-GEMM group on the GPU is Activation
/// (the decomposed NewGELU), Llama-2's is element-wise Arithmetic.
#[test]
fn language_model_dominant_groups() {
    for alias in ["gpt2", "gpt2-xl"] {
        let b = breakdown(alias, Platform::data_center(), true, Flow::Eager, 1);
        let (group, frac) = b.dominant_group().expect("has non-GEMM ops");
        assert_eq!(
            group,
            NonGemmGroup::Activation,
            "{alias} dominated by {group}"
        );
        assert!(frac > 0.15, "{alias}: Act share {frac:.2} (paper ~23%)");
    }
    let llama = breakdown("llama2", Platform::data_center(), true, Flow::Eager, 1);
    let (group, _) = llama.dominant_group().expect("has non-GEMM ops");
    assert_eq!(
        group,
        NonGemmGroup::Arithmetic,
        "llama2 dominated by {group}"
    );
}

/// §4.2 / Figures 7–8: under ONNX Runtime on a GPU, the Memory group
/// dominates the non-GEMM time for the transformer models, and the overall
/// non-GEMM share grows over eager.
#[test]
fn ort_memory_dominance() {
    let mut eager_avg = 0.0;
    let mut ort_avg = 0.0;
    for &m in ModelId::all() {
        let alias = m.spec().alias;
        let eager = breakdown(alias, Platform::data_center(), true, Flow::Eager, 1);
        let ort = breakdown(alias, Platform::data_center(), true, Flow::Ort, 1);
        eager_avg += eager.non_gemm_frac();
        ort_avg += ort.non_gemm_frac();
        if m.spec().task == Task::LanguageModel {
            let (group, _) = ort.dominant_group().expect("non-GEMM ops");
            assert_eq!(
                group,
                NonGemmGroup::Memory,
                "{alias} under ORT dominated by {group}"
            );
        }
    }
    assert!(
        ort_avg > eager_avg,
        "ORT must raise the average non-GEMM share"
    );
}

/// §4.2: the deployment flow changes *which* group dominates — eager GPT-2
/// is Activation-bound, ORT GPT-2 is Memory-bound.
#[test]
fn deployment_flow_changes_dominant_group() {
    let eager = breakdown("gpt2-xl", Platform::data_center(), true, Flow::Eager, 1);
    let ort = breakdown("gpt2-xl", Platform::data_center(), true, Flow::Ort, 1);
    assert_eq!(
        eager.dominant_group().expect("ops").0,
        NonGemmGroup::Activation
    );
    assert_eq!(ort.dominant_group().expect("ops").0, NonGemmGroup::Memory);
    assert!(
        ort.group_frac(NonGemmGroup::Memory) > 2.0 * eager.group_frac(NonGemmGroup::Memory),
        "ORT must at least double GPT2-XL's Memory share"
    );
}

/// §4.1: the non-GEMM dominance appears on *all three* GPU platforms.
#[test]
fn all_platforms_show_the_shift() {
    for platform in Platform::all_gpu() {
        let b = breakdown("gpt2", platform.clone(), true, Flow::Eager, 1);
        assert!(
            b.non_gemm_frac() > 0.5,
            "{}: gpt2 non-GEMM {:.2}",
            platform.label(),
            b.non_gemm_frac()
        );
    }
}

/// §4.1.4: memory ops are the most *frequent* operator class in the large
/// language models (80% / 62% of operator counts in the paper).
#[test]
fn memory_ops_are_most_frequent_in_llms() {
    for (m, floor) in [(ModelId::Gpt2Xl, 0.30), (ModelId::Llama2_7b, 0.25)] {
        let g = m.build(1, Scale::Full).expect("builds");
        let mem = g.group_count(NonGemmGroup::Memory) as f64 / g.len() as f64;
        assert!(mem > floor, "{m}: memory op fraction {mem:.2}");
        // memory is the largest non-GEMM group by count
        for &other in NonGemmGroup::all() {
            if other != NonGemmGroup::Memory {
                assert!(g.group_count(NonGemmGroup::Memory) >= g.group_count(other));
            }
        }
    }
}

/// Energy ordering: data-center hardware burns more joules per inference
/// at full tilt than mobile for the same workload, but finishes faster.
#[test]
fn energy_and_latency_orderings() {
    let dc = NonGemmBench::new(BenchConfig {
        models: vec!["vit-b".into()],
        platform: Platform::data_center(),
        ..BenchConfig::default()
    });
    let mb = NonGemmBench::new(BenchConfig {
        models: vec!["vit-b".into()],
        platform: Platform::mobile(),
        ..BenchConfig::default()
    });
    let p_dc = &dc.run_end_to_end().expect("profiles")[0];
    let p_mb = &mb.run_end_to_end().expect("profiles")[0];
    assert!(p_dc.total_latency_s() < p_mb.total_latency_s());
    assert!(p_dc.total_energy_j() > 0.0 && p_mb.total_energy_j() > 0.0);
}
