//! Multi-device sharding integration tests: pipeline cuts of random DAGs
//! must round-trip **bit-identical** to single-device execution, tensor-
//! parallel splits must reconstruct the unsplit GEMM (bitwise for the
//! column split, within 1e-9 for the row split + `AllReduce`), benchmark
//! models must survive both strategies on real device rosters, and the
//! analyzer's shard pass must see the plan graphs.

use nongemm::graph::{GraphBuilder, NodeId, OpKind};
use nongemm::shard::{execute, partition, DeviceSpec, ShardOptions, Strategy};
use nongemm::tensor::{bit_equal, max_abs_err};
use nongemm::{Analyzer, Interpreter, ModelId, NonGemmGroup, Scale};
use proptest::prelude::*;

const SEED: u64 = 0x5eed;

/// Runs `graph` sharded over `spec` and asserts every output is
/// bit-identical to the single-device interpreter.
fn assert_shard_bit_identical(
    graph: &nongemm::Graph,
    spec: &str,
    strategy: Strategy,
    microbatches: usize,
) {
    let devices = DeviceSpec::parse(spec).expect("device spec").roster();
    let plan = partition(graph, &devices, strategy, &ShardOptions::default())
        .unwrap_or_else(|e| panic!("{}: partition ({spec} {strategy}): {e}", graph.name));
    let run = execute(&plan, SEED, microbatches)
        .unwrap_or_else(|e| panic!("{}: execute ({spec} {strategy}): {e}", graph.name));
    let reference = Interpreter::new(SEED).run(graph).expect("reference run");
    assert_eq!(
        run.outputs.len(),
        reference.outputs.len(),
        "{}: output arity diverged under {spec} {strategy}",
        graph.name
    );
    for ((si, sv), (ri, rv)) in run.outputs.iter().zip(&reference.outputs) {
        assert_eq!(si, ri, "{}: output ids diverged", graph.name);
        assert!(
            bit_equal(sv, rv).expect("comparable outputs"),
            "{}: output {si} not bit-identical under {spec} {strategy} mb={microbatches}",
            graph.name
        );
    }
}

/// Builds a random shape-preserving DAG over `[2, 8]` activations from
/// proptest-drawn seeds; every op reads arbitrary earlier nodes, so
/// pipeline cuts land on multi-use activation edges, skip connections,
/// and fan-out — not just chains. Each seed packs the op kind (low byte)
/// and two producer picks (middle/high bits).
fn random_dag(ops: &[u64]) -> nongemm::Graph {
    let mut b = GraphBuilder::new("proptest_dag");
    let x = b.input(&[2, 8]);
    let mut ids = vec![x];
    for (i, seed) in ops.iter().enumerate() {
        let kind = seed & 0xff;
        let lhs = ids[((seed >> 8) as usize) % ids.len()];
        let rhs = ids[((seed >> 32) as usize) % ids.len()];
        let id = match kind % 6 {
            0 => b.push(
                OpKind::Linear {
                    in_f: 8,
                    out_f: 8,
                    bias: true,
                },
                &[lhs],
                &format!("fc{i}"),
            ),
            1 => b.push(OpKind::Gelu, &[lhs], &format!("gelu{i}")),
            2 => b.push(OpKind::Relu, &[lhs], &format!("relu{i}")),
            3 => b.push(OpKind::LayerNorm { dim: 8 }, &[lhs], &format!("ln{i}")),
            4 => b.push(OpKind::Add, &[lhs, rhs], &format!("add{i}")),
            _ => b.push(OpKind::Softmax { dim: 1 }, &[lhs], &format!("sm{i}")),
        }
        .expect("shape-preserving op");
        ids.push(id);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: an arbitrary pipeline cut of an arbitrary DAG
    /// never changes the math — every output bit survives the stage
    /// boundaries, transfers, and microbatched replay.
    #[test]
    fn random_pipeline_cut_round_trips_bit_identical(
        ops in prop::collection::vec(0u64..u64::MAX, 3..12),
        n_devices in 2usize..=4,
        microbatches in 1usize..=4,
    ) {
        let graph = random_dag(&ops);
        let spec = format!("{n_devices}xgpu");
        assert_shard_bit_identical(&graph, &spec, Strategy::Pipeline, microbatches);
    }

    /// Column-parallel tensor splits gather to the unsplit GEMM exactly:
    /// shard weights are bitwise row slices and every output element is
    /// computed once, so the reconstruction is bit-identical (which in
    /// particular puts it within the 1e-9 budget).
    #[test]
    fn tensor_split_reconstructs_unsplit_gemm(
        in_f in 4usize..24,
        out_f in 4usize..24,
        parts in 2usize..=4,
        bias in prop::bool::ANY,
    ) {
        let mut b = GraphBuilder::new("tp_linear");
        let x = b.input(&[2, in_f]);
        let h = b.push(OpKind::Linear { in_f, out_f, bias }, &[x], "fc")
            .expect("linear");
        b.push(OpKind::Gelu, &[h], "act").expect("gelu");
        let graph = b.finish();
        let spec = format!("{parts}xgpu");
        assert_shard_bit_identical(&graph, &spec, Strategy::Tensor, 2);
    }
}

/// Row-parallel splits slice the *input* features: each shard multiplies
/// a pre-sliced operand against a bitwise column slice of the full
/// weight, and the `AllReduce` sums the partial products in rank order.
/// Float re-association makes this path approximate, so the contract is
/// the standard forward-error bound for a reassociated `in_f`-term f32
/// accumulation — `in_f · ε · ‖y‖∞` (ε ≈ 1.2e-7; an absolute 1e-9 is
/// below one ulp of these outputs, i.e. unattainable in f32) — not bit
/// equality.
#[test]
fn row_split_shards_and_allreduce_reconstruct_unsplit_linear() {
    const IN_F: usize = 16;
    const OUT_F: usize = 12;

    let mut rb = GraphBuilder::new("row_ref");
    let x = rb.input(&[2, IN_F]);
    let full = rb
        .push(
            OpKind::Linear {
                in_f: IN_F,
                out_f: OUT_F,
                bias: true,
            },
            &[x],
            "fc",
        )
        .expect("linear");
    let reference_graph = rb.finish();

    for parts in [2usize, 4] {
        let mut b = GraphBuilder::new("row_split");
        let x = b.input(&[2, IN_F]);
        let mut shards = Vec::new();
        let chunk = IN_F / parts;
        for part in 0..parts {
            let slice = b
                .push(
                    OpKind::Slice {
                        dim: 1,
                        start: part * chunk,
                        len: chunk,
                    },
                    &[x],
                    &format!("slice{part}"),
                )
                .expect("slice");
            let sh = b
                .push(
                    OpKind::LinearShard {
                        in_f: IN_F,
                        out_f: OUT_F,
                        bias: true,
                        part,
                        parts,
                        row_split: true,
                    },
                    &[slice],
                    &format!("shard{part}"),
                )
                .expect("linear shard");
            shards.push(sh);
        }
        b.push(OpKind::AllReduce, &shards, "reduce")
            .expect("all reduce");
        let mut graph = b.finish();
        // Key every shard's parameter stream to the reference layer so
        // the sliced weights come from the same RNG replay.
        for node in &mut graph.nodes {
            if matches!(node.op, OpKind::LinearShard { .. }) {
                node.seed_hint = Some(full);
            }
        }

        let reference = Interpreter::new(SEED)
            .run(&reference_graph)
            .expect("reference run");
        let split = Interpreter::new(SEED).run(&graph).expect("split run");
        assert_eq!(split.outputs.len(), 1);
        assert_eq!(reference.outputs.len(), 1);
        let err =
            max_abs_err(&split.outputs[0].1, &reference.outputs[0].1).expect("comparable outputs");
        let scale = reference.outputs[0]
            .1
            .to_vec_f32()
            .expect("f32 output")
            .iter()
            .fold(1.0f32, |m, v| m.max(v.abs()));
        let bound = IN_F as f32 * f32::EPSILON * scale;
        assert!(
            err <= bound,
            "row-split x{parts} + all_reduce diverged from the unsplit linear: \
             max abs err {err:e} > bound {bound:e}"
        );
    }
}

/// Benchmark models survive both strategies on 2- and 4-device rosters
/// bit-identically. A fast representative subset here; the full 18-model
/// sweep is the `shard_sweep` CI gate.
#[test]
fn benchmark_models_shard_bit_identically() {
    for id in [ModelId::Gpt2, ModelId::Bert, ModelId::Segformer] {
        let graph = id.build(1, Scale::Tiny).expect("tiny model");
        assert_shard_bit_identical(&graph, "2xgpu", Strategy::Pipeline, 2);
        assert_shard_bit_identical(&graph, "2xgpu", Strategy::Tensor, 2);
    }
    let graph = ModelId::Gpt2.build(1, Scale::Tiny).expect("tiny model");
    assert_shard_bit_identical(&graph, "4xgpu", Strategy::Pipeline, 4);
    assert_shard_bit_identical(&graph, "4xgpu", Strategy::Tensor, 2);
}

/// Heterogeneous rosters (accelerator + host CPU) keep bit identity:
/// placement and transfer insertion never touch kernel math.
#[test]
fn heterogeneous_roster_keeps_bit_identity() {
    let graph = ModelId::Bert.build(1, Scale::Tiny).expect("tiny model");
    assert_shard_bit_identical(&graph, "gpu+cpu", Strategy::Pipeline, 3);
    assert_shard_bit_identical(&graph, "gpu+npu", Strategy::Pipeline, 2);
}

/// Plan graphs are first-class graphs: they validate, the census counts
/// the inserted collectives in their own taxonomy group, and the shard
/// analysis pass runs without deny-level findings.
#[test]
fn plan_graphs_pass_the_analyzer_with_collectives_censused() {
    let graph = ModelId::Gpt2.build(1, Scale::Tiny).expect("tiny model");
    let devices = DeviceSpec::parse("2xgpu").expect("spec").roster();
    for strategy in [Strategy::Pipeline, Strategy::Tensor] {
        let plan =
            partition(&graph, &devices, strategy, &ShardOptions::default()).expect("partition");
        plan.graph.validate().expect("plan graph validates");
        let report = Analyzer::new().analyze(&plan.graph);
        assert!(
            report.is_clean(),
            "{strategy} plan graph has deny-level findings"
        );
        let collectives = report
            .census
            .groups
            .iter()
            .find(|(label, _)| *label == NonGemmGroup::Collective.label())
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            collectives > 0,
            "{strategy} plan graph censused no collective/transfer nodes"
        );
    }
}

/// The partitioner rejects degenerate requests instead of producing
/// unrunnable plans.
#[test]
fn partitioner_rejects_degenerate_requests() {
    let graph = ModelId::Gpt2.build(1, Scale::Tiny).expect("tiny model");
    assert!(partition(&graph, &[], Strategy::Pipeline, &ShardOptions::default()).is_err());
    let empty = GraphBuilder::new("empty").finish();
    let devices = DeviceSpec::parse("2xgpu").expect("spec").roster();
    assert!(partition(
        &empty,
        &devices,
        Strategy::Pipeline,
        &ShardOptions::default()
    )
    .is_err());
}

/// `NodeId`s in a plan stay positional after transfer insertion — the
/// executor and profiler index by them.
#[test]
fn plan_node_ids_stay_positional() {
    let graph = ModelId::Segformer
        .build(1, Scale::Tiny)
        .expect("tiny model");
    let devices = DeviceSpec::parse("2xgpu").expect("spec").roster();
    let plan = partition(
        &graph,
        &devices,
        Strategy::Pipeline,
        &ShardOptions::default(),
    )
    .expect("partition");
    for (pos, node) in plan.graph.iter().enumerate() {
        assert_eq!(node.id, NodeId(pos));
    }
    assert_eq!(plan.device_of.len(), plan.graph.len());
    assert_eq!(plan.origin.len(), plan.graph.len());
}
