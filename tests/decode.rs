//! Autoregressive decode integration tests: the cached KV path must be
//! **bit-identical** to the uncached full-sequence recompute across
//! engines, thread counts, and optimization levels; the int8
//! weight-quantized path must stay within the documented tolerance; and
//! the decode lints must catch the malformed-cache counterexample.

use nongemm::exec::Engine;
use nongemm::graph::{GraphBuilder, OpKind};
use nongemm::models::decode_bundle;
use nongemm::ops::Quant;
use nongemm::runtime::{greedy_decode, greedy_reference, synth_prompt, DecodeSession};
use nongemm::tensor::{bit_equal, max_abs_err};
use nongemm::{Analyzer, Interpreter, Lint, ModelId, OptLevel, Scale};

const SEED: u64 = 0x5eed;
const PROMPT: usize = 4;

const LM_MODELS: [ModelId; 4] = [
    ModelId::Gpt2,
    ModelId::Gpt2Large,
    ModelId::Gpt2Xl,
    ModelId::Llama2_7b,
];

/// Tokens to generate per model: the CI-gate models get the full
/// 32-token run, the larger GPT-2 variants a shorter one to keep the
/// debug-mode suite fast.
fn new_tokens(id: ModelId) -> usize {
    match id {
        ModelId::Gpt2 | ModelId::Llama2_7b => 32,
        _ => 8,
    }
}

/// Runs cached greedy decode and the uncached reference under `interp`
/// (optionally with both graphs rewritten at `level` first) and asserts
/// token-for-token and bit-for-bit agreement.
fn assert_bit_identity(id: ModelId, interp: &Interpreter, level: Option<OptLevel>, max_new: usize) {
    let total = PROMPT + max_new;
    let bundle = decode_bundle(id, Scale::Tiny, 1, total)
        .expect("LM model")
        .expect("bundle builds");
    let (reference, decode) = match level {
        Some(level) => (
            nongemm::optimize_with(&bundle.reference, level, true).0,
            nongemm::optimize_with(&bundle.decode, level, true).0,
        ),
        None => (bundle.reference, bundle.decode),
    };
    let prompt = synth_prompt(SEED, &reference, PROMPT).expect("prompt");
    let mut session =
        DecodeSession::new(decode, &reference, interp.clone()).expect("session builds");
    let cached = greedy_decode(&mut session, &prompt, max_new).expect("cached decode");
    let uncached = greedy_reference(&reference, interp, &prompt, max_new).expect("reference");
    let tag = format!("{:?} (opt {level:?})", id);
    assert_eq!(cached.tokens, uncached.tokens, "{tag}: tokens diverged");
    assert_eq!(cached.step_probs.len(), uncached.step_probs.len());
    for (step, (a, b)) in cached
        .step_probs
        .iter()
        .zip(&uncached.step_probs)
        .enumerate()
    {
        assert!(
            bit_equal(a, b).expect("comparable shapes"),
            "{tag}: probabilities diverged bitwise at step {step}"
        );
    }
    assert!(cached.cache.reused_rows > 0, "{tag}: cache never reused");
}

#[test]
fn cached_decode_is_bit_identical_sequential() {
    for id in LM_MODELS {
        let interp = Interpreter::new(SEED).quantize(Quant::None);
        assert_bit_identity(id, &interp, None, new_tokens(id));
    }
}

#[test]
fn cached_decode_is_bit_identical_parallel_8_threads() {
    for id in LM_MODELS {
        for intra in [false, true] {
            let interp = Interpreter::new(SEED)
                .engine(Engine::Parallel(8))
                .intra_op(intra)
                .quantize(Quant::None);
            assert_bit_identity(id, &interp, None, new_tokens(id).min(8));
        }
    }
}

#[test]
fn cached_decode_is_bit_identical_at_o2() {
    for id in LM_MODELS {
        for threads in [1usize, 8] {
            let interp = if threads == 1 {
                Interpreter::new(SEED).quantize(Quant::None)
            } else {
                Interpreter::new(SEED)
                    .engine(Engine::Parallel(threads))
                    .quantize(Quant::None)
            };
            let max_new = if threads == 1 { new_tokens(id) } else { 8 };
            assert_bit_identity(id, &interp, Some(OptLevel::O2), max_new);
        }
    }
}

/// Documented end-to-end int8 envelope (same constant the `decode_sweep`
/// CI gate enforces): max absolute next-token probability deviation from
/// fp32 on an identical token stream.
const INT8_PROB_TOL: f32 = 5e-2;

#[test]
fn int8_decode_stays_within_documented_tolerance() {
    for id in [ModelId::Gpt2, ModelId::Llama2_7b] {
        let max_new = 8;
        let total = PROMPT + max_new;
        let bundle = decode_bundle(id, Scale::Tiny, 1, total)
            .expect("LM model")
            .expect("bundle builds");
        let prompt = synth_prompt(SEED, &bundle.reference, PROMPT).expect("prompt");

        let run = |quant: Quant| {
            let interp = Interpreter::new(SEED).quantize(quant);
            let mut session = DecodeSession::new(bundle.decode.clone(), &bundle.reference, interp)
                .expect("session builds");
            greedy_decode(&mut session, &prompt, max_new).expect("decode")
        };
        let fp32 = run(Quant::None);
        // teacher-force the fp32 token stream through the int8 session so
        // probabilities are compared on identical inputs
        let interp = Interpreter::new(SEED).quantize(Quant::Int8);
        let mut session = DecodeSession::new(bundle.decode.clone(), &bundle.reference, interp)
            .expect("session builds");
        let mut last = nongemm::tensor::Tensor::zeros(&[0]);
        for &tok in &prompt[0] {
            last = session.step(&[tok]).expect("prefill step");
        }
        let mut worst = 0.0f32;
        for (t, fp32_probs) in fp32.step_probs.iter().enumerate() {
            let err = max_abs_err(&last, fp32_probs).expect("comparable");
            worst = worst.max(err);
            if t + 1 < fp32.step_probs.len() {
                last = session.step(&[fp32.tokens[0][t]]).expect("decode step");
            }
        }
        assert!(
            worst <= INT8_PROB_TOL,
            "{id:?}: int8 probability error {worst:.3e} exceeds {INT8_PROB_TOL:.0e}"
        );
        assert!(
            worst > 0.0,
            "{id:?}: int8 produced bit-equal output — quantization inert?"
        );
    }
}

#[test]
fn unbounded_cache_growth_lint_fires_on_malformed_graph() {
    // a decode step that re-exports the grown cache instead of a
    // fixed-capacity append: the Cat output grows every step
    let mut b = GraphBuilder::new("bad-decode");
    let cache = b.input_named(&[4, 8, 16], "h.0.kv.k_cache");
    let x = b.input(&[4, 1, 16]);
    let fresh = b.push(OpKind::Relu, &[x], "fresh").expect("push");
    b.push(OpKind::Cat { dim: 1 }, &[cache, fresh], "grown")
        .expect("push");
    let report = Analyzer::new().analyze(&b.finish());
    let hits = report.findings(Lint::UnboundedCacheGrowth);
    assert_eq!(hits.len(), 1, "lint must fire exactly once");
    assert!(!report.is_clean(), "unbounded growth is deny-level");

    // well-formed decode graphs stay clean of both decode lints
    let bundle = decode_bundle(ModelId::Gpt2, Scale::Tiny, 1, 8)
        .expect("LM model")
        .expect("bundle builds");
    let report = Analyzer::new().analyze(&bundle.decode);
    assert!(report.findings(Lint::UnboundedCacheGrowth).is_empty());
    assert!(report.findings(Lint::StaleCacheShape).is_empty());
}
