//! Deployment-flow pipeline invariants across crates: fusion reduces
//! kernels, ORT fallback adds transfers, and the measured interpreter path
//! agrees with graph structure.

use nongemm::runtime::{plan, Placement};
use nongemm::{Flow, ModelId, Scale};

#[test]
fn dynamo_fuses_fewer_kernels_than_eager() {
    for &m in [ModelId::Gpt2, ModelId::Llama2_7b, ModelId::ResNet50].iter() {
        let g = m.build(1, Scale::Full).expect("builds");
        let eager = plan(&g, Flow::Eager, true);
        let dynamo = plan(&g, Flow::Dynamo, true);
        assert!(
            dynamo.total_kernels() < eager.total_kernels(),
            "{m}: dynamo {} vs eager {}",
            dynamo.total_kernels(),
            eager.total_kernels()
        );
        assert!(
            dynamo.nodes.iter().any(|n| n.fused_into_prev),
            "{m}: no fusion happened"
        );
    }
}

#[test]
fn ort_fallback_only_on_gpu_platforms() {
    let g = ModelId::Gpt2Xl.build(1, Scale::Full).expect("builds");
    let gpu_plan = plan(&g, Flow::Ort, true);
    let cpu_plan = plan(&g, Flow::Ort, false);
    assert!(
        gpu_plan.cpu_fallback_count() > 50,
        "GPT2-XL has many layout ops that fall back"
    );
    assert_eq!(cpu_plan.cpu_fallback_count(), 0);
    assert!(cpu_plan.nodes.iter().all(|n| n.transfer_bytes == 0.0));
    // fallen-back nodes pay transfers proportional to their tensors
    let total_transfer: f64 = gpu_plan.nodes.iter().map(|n| n.transfer_bytes).sum();
    assert!(total_transfer > 1e6, "transfers {total_transfer}");
}

#[test]
fn eager_decomposed_ops_pay_per_kernel_dispatch() {
    let g = ModelId::Llama2_7b.build(1, Scale::Full).expect("builds");
    let p = plan(&g, Flow::Eager, true);
    let norm_node = g
        .iter()
        .find(|n| matches!(n.op, nongemm::OpKind::LlamaRmsNorm { .. }))
        .expect("llama has rms norms");
    let planned = &p.nodes[norm_node.id.0];
    assert_eq!(planned.cost.kernels, 6);
    assert!(
        planned.dispatch_s >= 6.0 * 10.0e-6,
        "decomposed norm should pay 6 dispatches, got {}",
        planned.dispatch_s
    );
    // the same node under ORT is a single fused kernel
    let ort = plan(&g, Flow::Ort, true);
    assert_eq!(ort.nodes[norm_node.id.0].cost.kernels, 1);
}

#[test]
fn flows_keep_gemm_on_gpu() {
    let g = ModelId::VitBase16.build(1, Scale::Full).expect("builds");
    for &flow in Flow::all() {
        let p = plan(&g, flow, true);
        for (node, planned) in g.iter().zip(&p.nodes) {
            if node.class().is_gemm() {
                assert_eq!(
                    planned.placement,
                    Placement::Gpu,
                    "{flow}: GEMM node {} must stay on the GPU",
                    node.name
                );
            }
        }
    }
}

#[test]
fn measured_and_analytic_agree_on_hotspot_class() {
    // On the tiny GPT-2, both the host-measured profile and the analytic
    // CPU profile must attribute the largest share to GEMM operators
    // (CPU-only; this is Figure 1's CPU panel).
    let g = ModelId::Gpt2.build(1, Scale::Tiny).expect("builds");
    let measured = nongemm::profiler::profile_measured(&g, 3, 7).expect("executes");
    let analytic = nongemm::profiler::profile_analytic(
        &g,
        &nongemm::Platform::data_center().cpu_only(),
        Flow::Eager,
        false,
        1,
    );
    let m = measured.breakdown();
    let a = analytic.breakdown();
    assert!(m.gemm_frac() > 0.3, "measured GEMM {:.2}", m.gemm_frac());
    // the analytic CPU model charges per-op framework dispatch that the
    // bare interpreter does not, so its GEMM share on a toy model is lower
    assert!(a.gemm_frac() > 0.1, "analytic GEMM {:.2}", a.gemm_frac());
    let (mg, _) = m.dominant_group().expect("ops");
    let (ag, _) = a.dominant_group().expect("ops");
    assert!(m.groups.contains_key(&ag) && a.groups.contains_key(&mg));
}
