//! Cross-crate integration tests: the full NonGEMM Bench stack from model
//! construction through profiling and reporting.

use nongemm::{BenchConfig, Flow, ModelId, NonGemmBench, NonGemmGroup, Platform, Scale};

#[test]
fn all_18_models_build_full_scale_and_validate() {
    for &m in ModelId::all() {
        let g = m
            .build(1, Scale::Full)
            .unwrap_or_else(|e| panic!("{m}: {e}"));
        g.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
        assert!(g.gemm_count() > 0, "{m} has no GEMM ops");
        assert!(
            NonGemmGroup::all()
                .iter()
                .any(|&grp| g.group_count(grp) > 0),
            "{m} has no non-GEMM ops"
        );
    }
}

#[test]
fn parameter_counts_track_table1() {
    // our rebuilt graphs should be within 2x of every published count
    for &m in ModelId::all() {
        let spec = m.spec();
        let params = m.build(1, Scale::Full).expect("builds").param_count() as f64;
        let reported = spec.params_reported as f64;
        let ratio = params / reported;
        // MaskFormer's published 102M checkpoint pairs a larger backbone
        // with the R50 graph we rebuild, so it gets a wider band
        let floor = if m == ModelId::Maskformer { 0.25 } else { 0.5 };
        assert!(
            (floor..2.0).contains(&ratio),
            "{m}: {params} vs reported {reported} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn every_model_profiles_on_every_platform_and_flow() {
    // one smoke pass over the full (platform × flow) matrix with one model
    // per task domain
    for platform in Platform::all_gpu() {
        for &flow in Flow::all() {
            for alias in ["resnet50", "frcnn", "segformer", "gpt2"] {
                let bench = NonGemmBench::new(BenchConfig {
                    models: vec![alias.into()],
                    platform: platform.clone(),
                    flow,
                    use_gpu: true,
                    batch: 1,
                    scale: Scale::Full,
                    ..BenchConfig::default()
                });
                let p = &bench.run_end_to_end().expect("profiles")[0];
                let b = p.breakdown();
                assert!(p.total_latency_s() > 0.0);
                assert!(p.total_energy_j() > 0.0);
                let sum = b.gemm_frac() + b.non_gemm_frac();
                assert!((sum - 1.0).abs() < 1e-9, "{alias}/{flow}: {sum}");
            }
        }
    }
}

#[test]
fn tiny_models_execute_for_real_end_to_end() {
    // the measured (host) path must run every tiny model through the
    // interpreter and produce finite outputs
    let bench = NonGemmBench::new(BenchConfig {
        scale: Scale::Tiny,
        iterations: 1,
        ..BenchConfig::default()
    });
    let profiles = bench.run_measured().expect("all tiny models execute");
    assert_eq!(profiles.len(), 18);
    for p in &profiles {
        assert!(p.total_latency_s() > 0.0, "{} measured nothing", p.model);
        assert!(p.nodes.iter().all(|n| n.latency_s.is_finite()));
    }
}

#[test]
fn microbench_registry_covers_all_groups() {
    let bench = NonGemmBench::new(BenchConfig {
        scale: Scale::Full,
        ..BenchConfig::default()
    });
    let (registry, results) = bench.run_microbench().expect("harvest succeeds");
    assert_eq!(registry.len(), results.len());
    // the paper's registry has 1460 instances; ours must be the same order
    assert!(
        registry.len() > 400 && registry.len() < 15_000,
        "registry size {} out of expected range",
        registry.len()
    );
    let stats = registry.group_stats();
    for group in [
        "Normalization",
        "Activation",
        "Memory",
        "Arithmetic",
        "Logit",
    ] {
        assert!(
            stats.get(group).copied().unwrap_or(0) > 0,
            "no {group} records"
        );
    }
    // metadata-only layout ops legitimately cost ~0; everything else must
    // have a positive analytic latency
    let positive = results.iter().filter(|r| r.analytic_s > 0.0).count();
    assert!(
        positive as f64 > 0.5 * results.len() as f64,
        "{positive}/{}",
        results.len()
    );
    assert!(results.iter().all(|r| r.analytic_s >= 0.0));
}

#[test]
fn reports_serialize_to_json() {
    let bench = NonGemmBench::new(BenchConfig {
        models: vec!["detr".into()],
        scale: Scale::Full,
        ..BenchConfig::default()
    });
    let reports = bench.reports().expect("reports build");
    let (perf, workload, non_gemm) = &reports[0];
    for json in [
        serde_json::to_string(perf).expect("serializable"),
        serde_json::to_string(workload).expect("serializable"),
        serde_json::to_string(non_gemm).expect("serializable"),
    ] {
        assert!(json.len() > 50);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(v.is_object());
    }
}

#[test]
fn dataset_pipeline_feeds_models() {
    use nongemm::data::{ImageNetSynthetic, Preprocessor, Tokenizer, WikitextSynthetic};
    use nongemm::exec::Interpreter;
    use nongemm::graph::NodeId;
    use std::collections::HashMap;

    // vision path: synthetic image -> preprocess -> tiny ResNet
    let g = ModelId::ResNet50.build(1, Scale::Tiny).expect("builds");
    let imgs = ImageNetSynthetic::new(48, 1);
    let batch = Preprocessor::new(32).batch(&imgs, 1).expect("preprocess");
    let mut inputs = HashMap::new();
    inputs.insert(NodeId(0), batch);
    let t = Interpreter::default()
        .run_with_inputs(&g, &inputs)
        .expect("executes");
    assert_eq!(t.outputs[0].1.shape(), &[1, 10]);

    // text path: synthetic corpus -> tokenize -> tiny GPT-2
    let g = ModelId::Gpt2.build(2, Scale::Tiny).expect("builds");
    let corpus = WikitextSynthetic::default();
    let lines = corpus.clean_lines(2);
    let ids = Tokenizer::new(100)
        .encode_batch(&lines, 6)
        .expect("tokenizes");
    let mut inputs = HashMap::new();
    inputs.insert(NodeId(0), ids);
    let t = Interpreter::default()
        .run_with_inputs(&g, &inputs)
        .expect("executes");
    assert_eq!(t.outputs[0].1.shape(), &[2, 6, 100]);
}

#[test]
fn custom_models_plug_into_the_registry() {
    use nongemm::graph::{GraphBuilder, OpKind};
    use nongemm::ModelRegistry;

    let mut reg = ModelRegistry::with_presets().scale(Scale::Tiny);
    reg.register("probe", |batch| {
        let mut b = GraphBuilder::new("probe");
        let x = b.input(&[batch, 8]);
        let h = b.push(
            OpKind::Linear {
                in_f: 8,
                out_f: 8,
                bias: true,
            },
            &[x],
            "fc",
        )?;
        b.push(OpKind::Silu, &[h], "act")?;
        Ok(b.finish())
    });
    assert_eq!(reg.names().len(), 19);
    let g = reg.build("probe", 3).expect("custom model builds");
    let p = nongemm::profiler::profile_analytic(&g, &Platform::mobile(), Flow::Eager, true, 3);
    assert!(p.total_latency_s() > 0.0);
}
