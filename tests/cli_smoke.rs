//! CLI smoke tests: help coverage, exit-code conventions, and the
//! `ci` gate driven through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nongemm-cli"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!("ngb-cli-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

#[test]
fn help_exits_zero_and_documents_every_flag() {
    for args in [
        &["--help"][..],
        &["-h"],
        &["help"],
        &["run", "--help"],
        &["serve", "--help"],
        &["generate", "--help"],
    ] {
        let out = cli().args(args).output().expect("spawn cli");
        assert!(
            out.status.success(),
            "{args:?} must exit 0, got {:?}",
            out.status.code()
        );
        let text = String::from_utf8(out.stdout).unwrap();
        // every subcommand and every flag added since PR 1 must be listed
        for needle in [
            "run",
            "generate",
            "verify",
            "sanitize",
            "serve",
            "ci",
            "--model",
            "--platform",
            "--flow",
            "--batch",
            "--cpu-only",
            "--tiny",
            "--measured",
            "--microbench",
            "--threads",
            "--opt-level",
            "--format",
            "--trace",
            "--all",
            "--check",
            "--update",
            "--dir",
            "--bench",
            "--report",
            "--wallclock-iters",
            "--no-wallclock",
            "--intra-op",
            "--addr",
            "--max-batch",
            "--batch-wait-us",
            "--queue-cap",
            "--quantize",
            "--max-new-tokens",
            "--prompt-len",
            "NGB_QUANT",
            "NGB_THREADS",
            "NGB_OPT",
            "NGB_NO_WALLCLOCK",
            "NGB_INTRAOP",
            "NGB_INTRAOP_MIN_ELEMS",
            "NGB_SERVE_ADDR",
            "NGB_SERVE_MAX_BATCH",
            "NGB_SERVE_BATCH_WAIT_US",
            "NGB_SERVE_QUEUE_CAP",
        ] {
            assert!(text.contains(needle), "{args:?} help lacks '{needle}'");
        }
    }
}

#[test]
fn unknown_flags_and_subcommands_exit_two_with_usage() {
    let cases: &[&[&str]] = &[
        &["--bogus"],
        &["run", "--bogus"],
        &["verify", "--bogus"],
        &["ci", "--bogus"],
        &["frobnicate"],
        &["run", "--threads", "0"],
        &["run", "--opt-level", "9"],
        &["verify", "--format", "csv"],
        &["ci", "--format", "csv"],
        &["ci", "--check", "--update"],
        &["run", "--model"], // missing value
        &["run", "--intra-op", "maybe"],
        &["verify", "--intra-op", "2"],
        &["serve", "--bogus"],
        &["serve", "--max-batch", "0"],
        &["serve", "--batch-wait-us", "soon"],
        &["serve", "--queue-cap", "-1"],
        &["serve", "--addr"], // missing value
        &["generate", "--bogus"],
        &["generate", "--quantize", "int4"],
        &["generate", "--max-new-tokens", "0"],
        &["generate", "--prompt-len"], // missing value
    ];
    for args in cases {
        let out = cli().args(*args).output().expect("spawn cli");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, got {:?}",
            out.status.code()
        );
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("usage: nongemm-cli"),
            "{args:?} stderr lacks the usage string: {err}"
        );
    }
}

#[test]
fn ci_update_then_check_round_trips_through_the_binary() {
    let dir = tmpdir("gate");
    let baselines = dir.join("baselines");
    let bench = dir.join("BENCH_BASELINE.json");
    let common = [
        "ci",
        "--model",
        "gpt2",
        "--no-wallclock",
        "--dir",
        baselines.to_str().unwrap(),
        "--bench",
        bench.to_str().unwrap(),
    ];

    // a check before any baselines exist must fail and point at --update
    let out = cli().args(common).output().expect("spawn cli");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("--update"), "{text}");

    let out = cli()
        .args(common)
        .arg("--update")
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("new  gpt2"), "{text}");
    assert!(baselines.join("gpt2.json").is_file());
    assert!(bench.is_file(), "--update seeds BENCH_BASELINE.json");

    let report = dir.join("report.json");
    let out = cli()
        .args(common)
        .args(["--check", "--report", report.to_str().unwrap()])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ok   gpt2"), "{text}");
    assert!(text.contains("result: PASS"), "{text}");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(v["clean"], true);
    assert_eq!(v["models_checked"], 1.0);

    // perturb the committed baseline; the check must name model + metric
    let path = baselines.join("gpt2.json");
    let mangled = std::fs::read_to_string(&path)
        .unwrap()
        .replacen("\"gemm\": ", "\"gemm\": 1", 1); // prepends a digit: count changes
    std::fs::write(&path, mangled).unwrap();
    let out = cli()
        .args(common)
        .args(["--format", "json"])
        .output()
        .expect("spawn cli");
    assert_eq!(out.status.code(), Some(1));
    let v: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(v["clean"], false);
    assert_eq!(v["models_failed"][0], "gpt2");
    assert_eq!(v["diffs"][0]["metric"], "graph.gemm");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_decodes_a_tiny_model_with_and_without_int8() {
    for quant in ["none", "int8"] {
        let out = cli()
            .args([
                "generate",
                "--model",
                "gpt2",
                "--tiny",
                "--max-new-tokens",
                "4",
                "--quantize",
                quant,
            ])
            .output()
            .expect("spawn cli");
        assert!(
            out.status.success(),
            "generate --quantize {quant}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("tok/s"), "{text}");
        assert!(text.contains("cache hit rate"), "{text}");
        assert!(text.contains(&format!("quant {quant}")), "{text}");
    }
}

#[test]
fn generate_rejects_non_lm_models() {
    let out = cli()
        .args(["generate", "--model", "resnet50", "--tiny"])
        .output()
        .expect("spawn cli");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("not an autoregressive LM"), "{err}");
}

#[test]
fn verify_still_passes_for_a_tiny_model() {
    let out = cli()
        .args(["verify", "--model", "gpt2", "--tiny"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("PASS"), "{text}");
}
