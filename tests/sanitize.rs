//! End-to-end contract of the hazard verifier + execution sanitizer:
//! every registry model is hazard-free — statically (happens-before
//! coverage, storage interference, partition disjointness) and under
//! sanitized execution across engines — while every seeded fault class
//! (dropped edge, truncated lifetime, premature free, overlapping
//! chunks) is caught by the static verifier or the shadow-memory
//! sanitizer. Sanitizer-off runs stay byte-identical to sanitized runs.

use nongemm::exec::{BufferPlan, Engine, Interpreter, ParallelExecutor, Schedule};
use nongemm::graph::{Graph, GraphBuilder, OpKind};
use nongemm::sanitize::{faults, verify_graph, verify_parts, HazardKind, SanitizeReport};
use nongemm::{optimize, ModelId, OptLevel, Scale};

/// Output bit patterns: NaN-safe equality (`NaN != NaN` under `f32` eq).
fn bits(trace: &nongemm::exec::ExecutionTrace) -> Vec<(usize, Vec<usize>, Vec<u64>)> {
    trace
        .outputs
        .iter()
        .map(|(id, t)| {
            let b = if let Ok(v) = t.to_vec_f32() {
                v.iter().map(|x| u64::from(x.to_bits())).collect()
            } else if let Ok(v) = t.to_vec_i64() {
                v.iter().map(|&x| x as u64).collect()
            } else {
                t.to_vec_bool()
                    .expect("f32, i64, or bool outputs")
                    .iter()
                    .map(|&x| u64::from(x))
                    .collect()
            };
            (id.0, t.shape().to_vec(), b)
        })
        .collect()
}

#[test]
fn every_model_is_statically_hazard_free_at_both_scales() {
    for &model in ModelId::all() {
        for scale in [Scale::Tiny, Scale::Full] {
            let base = model
                .build(1, scale)
                .unwrap_or_else(|e| panic!("{model}: {e}"));
            for level in [OptLevel::O0, OptLevel::O2] {
                let (g, _) = optimize(&base, level);
                let report = verify_graph(&g);
                assert!(
                    report.is_clean(),
                    "{model} {scale:?} {level:?}:\n{}",
                    report.to_text()
                );
                // the proof actually covered the graph, not vacuously
                assert_eq!(report.stats.nodes, g.len());
                assert_eq!(
                    report.stats.ordered_pairs_proved, report.stats.edges_checked,
                    "{model} {scale:?} {level:?}: unproved edges"
                );
                assert!(report.stats.partitions_checked >= g.len());
            }
        }
    }
}

#[test]
fn sanitized_execution_sweep_is_clean_and_bit_identical() {
    for &model in ModelId::all() {
        let base = model
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        for level in [OptLevel::O0, OptLevel::O2] {
            let (g, _) = optimize(&base, level);
            let want = bits(
                &Interpreter::default()
                    .sanitize(false)
                    .run(&g)
                    .unwrap_or_else(|e| panic!("{model} {level:?} (baseline): {e}")),
            );
            for intra_op in [false, true] {
                for threads in [1usize, 2, 8] {
                    let trace = Interpreter::default()
                        .engine(Engine::Parallel(threads))
                        .intra_op(intra_op)
                        .sanitize(true)
                        .run(&g)
                        .unwrap_or_else(|e| {
                            panic!(
                                "{model} {level:?} (sanitized, intra {intra_op}, {threads}t): {e}"
                            )
                        });
                    assert_eq!(
                        want,
                        bits(&trace),
                        "{model} {level:?}: sanitizer perturbed outputs \
                         (intra {intra_op}, {threads} threads)"
                    );
                }
            }
            // the sequential engine takes the shadow-memory path too
            let trace = Interpreter::default()
                .sanitize(true)
                .run(&g)
                .unwrap_or_else(|e| panic!("{model} {level:?} (sanitized sequential): {e}"));
            assert_eq!(
                want,
                bits(&trace),
                "{model} {level:?}: sequential sanitizer"
            );
        }
    }
}

fn residual_block() -> Graph {
    // input consumed twice (residual add), so lifetimes have real width
    let mut b = GraphBuilder::new("residual");
    let x = b.input(&[4, 32]);
    let h = b.push(OpKind::Gelu, &[x], "act").unwrap();
    let s = b.push(OpKind::Add, &[h, x], "res").unwrap();
    b.push(OpKind::Relu, &[s], "out").unwrap();
    b.finish()
}

#[test]
fn static_verifier_catches_every_seeded_fault_class() {
    let g = ModelId::Gpt2.build(1, Scale::Tiny).unwrap();
    for seed in 0..8u64 {
        // dropped schedule edge -> missing-edge
        let mut sched = Schedule::new(&g);
        faults::drop_edge(&mut sched, &g, seed).expect("gpt2 has edges");
        let report = verify_parts(&g, &sched, &BufferPlan::new(&g));
        assert!(
            report.count(HazardKind::MissingEdge) >= 1,
            "seed {seed}:\n{}",
            report.to_text()
        );

        // truncated consumer count -> uses-mismatch
        let mut plan = BufferPlan::new(&g);
        faults::truncate_lifetime(&mut plan, seed).expect("gpt2 has multi-use values");
        let report = verify_parts(&g, &Schedule::new(&g), &plan);
        assert!(
            report.count(HazardKind::UsesMismatch) >= 1,
            "seed {seed}:\n{}",
            report.to_text()
        );

        // premature free -> lifetime-truncated
        let mut plan = BufferPlan::new(&g);
        faults::premature_free(&mut plan, seed).expect("gpt2 has consumed values");
        let report = verify_parts(&g, &Schedule::new(&g), &plan);
        assert!(
            report.count(HazardKind::LifetimeTruncated) >= 1,
            "seed {seed}:\n{}",
            report.to_text()
        );

        // overlapping chunk decomposition -> partition hazard
        let mut ranges = nongemm::ops::parallel::element_partition(1 << 20, 1);
        faults::overlap_chunks(&mut ranges, seed).expect("non-empty decomposition");
        let mut report = SanitizeReport::new("chunks");
        assert!(!nongemm::sanitize::verify_ranges(
            "element",
            &ranges,
            1 << 20,
            nongemm::graph::NodeId(0),
            &mut report
        ));
        assert!(
            report.count(HazardKind::PartitionOverlap)
                + report.count(HazardKind::PartitionOutOfBounds)
                >= 1
        );
    }
}

#[test]
fn shadow_memory_catches_a_dropped_edge_at_runtime() {
    // a chain makes the race deterministic: dropping any edge leaves the
    // consumer immediately ready, and the fault's priority boost pops it
    // before its producer on the single-worker engine
    let mut b = GraphBuilder::new("chain");
    let mut cur = b.input(&[8, 8]);
    for i in 0..4 {
        cur = b.push(OpKind::Gelu, &[cur], &format!("g{i}")).unwrap();
    }
    let g = b.finish();
    for seed in 0..8u64 {
        let mut sched = Schedule::new(&g);
        let (u, v) = faults::drop_edge(&mut sched, &g, seed).unwrap();
        let err = ParallelExecutor::new(0x5eed, 1)
            .sanitize(true)
            .run_with_parts(&g, sched, BufferPlan::new(&g))
            .expect_err("the sanitizer must catch the %{u}->%{v} race");
        let msg = err.to_string();
        assert!(
            msg.contains("sanitizer") && msg.contains("trace"),
            "seed {seed} (dropped %{u}->%{v}): {msg}"
        );
    }
}

#[test]
fn shadow_memory_catches_a_truncated_lifetime_at_runtime() {
    // uses[input] drops 2 -> 1: the executor frees the input after the
    // first consumer, and the residual add's read hits freed storage
    let g = residual_block();
    let mut plan = BufferPlan::new(&g);
    let v = faults::truncate_lifetime(&mut plan, 0).unwrap();
    let err = ParallelExecutor::new(0x5eed, 1)
        .sanitize(true)
        .run_with_parts(&g, Schedule::new(&g), plan)
        .expect_err("the sanitizer must catch the use-after-free");
    let msg = err.to_string();
    assert!(
        msg.contains("sanitizer") && msg.contains(&format!("%{v}")),
        "{msg}"
    );
    // the same corrupted plan is also caught statically
    let mut plan = BufferPlan::new(&g);
    faults::truncate_lifetime(&mut plan, 0).unwrap();
    let report = verify_parts(&g, &Schedule::new(&g), &plan);
    assert!(report.count(HazardKind::UsesMismatch) >= 1);
}

#[test]
fn unmutated_parts_run_clean_through_the_fault_entry_point() {
    let g = residual_block();
    let trace = ParallelExecutor::new(0x5eed, 2)
        .sanitize(true)
        .run_with_parts(&g, Schedule::new(&g), BufferPlan::new(&g))
        .unwrap();
    assert_eq!(trace.outputs.len(), 1);
}

#[test]
fn sanitizer_overhead_is_bounded_and_off_mode_is_free() {
    // measured, not asserted tightly: the shadow state machine costs one
    // mutex round-trip per read/write/free, so tiny graphs should stay
    // within a small constant factor; off-mode shares the exact code path
    // the regress baselines were recorded on.
    let g = ModelId::Gpt2.build(1, Scale::Tiny).unwrap();
    let run = |sanitize: bool| {
        let start = std::time::Instant::now();
        let trace = Interpreter::default()
            .engine(Engine::Parallel(2))
            .sanitize(sanitize)
            .run(&g)
            .unwrap();
        (start.elapsed(), bits(&trace))
    };
    let (_, want) = run(false); // warm caches
    let (off, base) = run(false);
    let (on, checked) = run(true);
    assert_eq!(want, base);
    assert_eq!(base, checked, "sanitizer must not perturb outputs");
    eprintln!(
        "sanitizer overhead: off {:?}, on {:?} ({:.2}x)",
        off,
        on,
        on.as_secs_f64() / off.as_secs_f64().max(f64::EPSILON)
    );
}
