//! End-to-end tests of the `ngb-regress` gate: baseline round-trips,
//! perturbation detection, schema versioning, and the bench seed.

use std::path::PathBuf;

use nongemm::regress::{
    baseline_path, check, compare_model, load_baseline, model_baseline, refresh_bench_seed, update,
    write_baseline, GateConfig, RegressError, Tolerance, SCHEMA_VERSION,
};
use nongemm::ModelId;

fn tmpdir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "ngb-regress-it-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn cfg(dir: PathBuf, models: Vec<ModelId>) -> GateConfig {
    GateConfig {
        dir,
        models,
        wallclock_iters: None,
        tolerance: Tolerance::default(),
    }
}

#[test]
fn write_read_compare_round_trip_is_clean() {
    let dir = tmpdir("roundtrip");
    let baseline = model_baseline(ModelId::VitBase16, None).unwrap();
    let path = baseline_path(&dir, &baseline.model);
    write_baseline(&path, &baseline).unwrap();
    let reread = load_baseline(&path).unwrap();
    assert_eq!(baseline, reread);
    assert!(compare_model(&baseline, &reread, &Tolerance::default()).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perturbed_baseline_file_fails_check_naming_model_and_metric() {
    let dir = tmpdir("perturb");
    let gate = cfg(dir.clone(), vec![ModelId::Gpt2]);
    update(&gate).unwrap();

    // sabotage one committed cost-model entry on disk, as a bad PR would
    let path = baseline_path(&dir, "gpt2");
    let mut baseline = load_baseline(&path).unwrap();
    let cell = baseline.snapshots[2].key();
    baseline.snapshots[2].cost.non_gemm_us *= 2.0;
    write_baseline(&path, &baseline).unwrap();

    let outcome = check(&gate).unwrap();
    assert!(!outcome.is_clean());
    assert_eq!(outcome.failed_models(), vec!["gpt2"]);
    let diff = &outcome.diffs[0];
    assert_eq!(diff.metric, "cost.non_gemm_us");
    assert_eq!(diff.context, cell);
    let text = outcome.to_text();
    assert!(text.contains("FAIL gpt2"), "{text}");
    assert!(text.contains("cost.non_gemm_us"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perturbed_optimizer_counter_fails_check() {
    let dir = tmpdir("opt");
    let gate = cfg(dir.clone(), vec![ModelId::ResNet50]);
    update(&gate).unwrap();

    let path = baseline_path(&dir, "resnet50");
    let mut baseline = load_baseline(&path).unwrap();
    // the O2 snapshot records conv+bn folds; pretend one more happened
    let o2 = baseline
        .snapshots
        .iter_mut()
        .find(|s| s.key() == "tiny/O2")
        .expect("tiny/O2 cell exists");
    *o2.opt.rewrites.get_mut("conv_bn_act").unwrap() += 1;
    write_baseline(&path, &baseline).unwrap();

    let outcome = check(&gate).unwrap();
    assert!(!outcome.is_clean());
    assert_eq!(outcome.diffs.len(), 1);
    assert_eq!(outcome.diffs[0].metric, "opt.rewrites.conv_bn_act");
    assert_eq!(outcome.diffs[0].context, "tiny/O2");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_schema_baseline_is_an_update_hint_not_a_panic() {
    let dir = tmpdir("schema");
    let path = baseline_path(&dir, "bert");
    // a v0 file from some ancient PR: parses as JSON, wrong schema
    std::fs::write(
        &path,
        "{\"schema\": 0, \"model\": \"bert\", \"snapshots\": [], \"wallclock\": null}",
    )
    .unwrap();
    let err = load_baseline(&path).unwrap_err();
    assert!(matches!(err, RegressError::Schema { found: 0, .. }));
    assert!(err.to_string().contains("--update"));

    // through the gate the same file fails the check instead of aborting
    let gate = cfg(dir.clone(), vec![ModelId::Bert]);
    let outcome = check(&gate).unwrap();
    assert!(!outcome.is_clean());
    assert_eq!(outcome.diffs[0].context, "baseline");
    assert!(outcome.diffs[0].baseline.contains("schema v0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_seed_has_cost_totals_for_selected_models() {
    let dir = tmpdir("bench");
    let gate = cfg(dir.clone(), vec![ModelId::Gpt2, ModelId::MobileNetV2]);
    update(&gate).unwrap();
    let bench = dir.join("BENCH_BASELINE.json");
    let n = refresh_bench_seed(&gate, &bench).unwrap();
    assert_eq!(n, 2);
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&bench).unwrap()).unwrap();
    assert_eq!(v["schema"].as_u64().unwrap(), SCHEMA_VERSION);
    for alias in ["gpt2", "mobilenet_v2"] {
        let entry = &v["models"][alias];
        let total = entry["total_us"].as_f64().unwrap();
        let gemm = entry["gemm_us"].as_f64().unwrap();
        let non_gemm = entry["non_gemm_us"].as_f64().unwrap();
        assert!(total > 0.0, "{alias}");
        assert!(
            (gemm + non_gemm - total).abs() <= 1e-6 * total,
            "{alias}: {gemm} + {non_gemm} != {total}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_baselines_match_head() {
    // The acceptance gate itself: the baselines committed in this repo
    // must describe the current tree. Skips cleanly when the test runs
    // outside the repo checkout (e.g. a published crate).
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines");
    if !dir.is_dir() {
        eprintln!("skipping: no committed baselines at {}", dir.display());
        return;
    }
    let gate = GateConfig {
        dir,
        models: ModelId::all().to_vec(),
        wallclock_iters: None, // wall-clock is the CLI's job, not the test suite's
        tolerance: Tolerance::default(),
    };
    let outcome = check(&gate).unwrap();
    assert!(outcome.is_clean(), "{}", outcome.to_text());
    assert_eq!(outcome.models.len(), 18);
}
