//! End-to-end tests of the `ngb-serve` inference service: admission
//! control, dynamic batch formation, bit-identity of batched rows vs solo
//! execution, and graceful shutdown under load.
//!
//! All tests bind 127.0.0.1:0 (ephemeral ports) and use the tiny model
//! scale, so they are safe to run in parallel and in CI. The `pause` /
//! `resume` wire ops make batch formation deterministic: with the
//! scheduler held, a known set of requests queues up, and releasing it
//! dispatches them as one batch.

use std::collections::HashMap;
use std::time::Duration;

use nongemm::serve::protocol::{tensor_digest, Request};
use nongemm::serve::{batching, Client, ServeConfig, Server, ServerHandle};
use nongemm::{Interpreter, ModelId, OptLevel, Scale};

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        scale: Scale::Tiny,
        opt_level: OptLevel::O0,
        max_batch: 4,
        batch_wait: Duration::from_millis(5),
        queue_cap: 64,
        threads: 2,
        intra_op: Some(false),
        seed: 0x5eed,
    }
}

fn start(config: ServeConfig) -> ServerHandle {
    Server::start(config).expect("server binds an ephemeral port")
}

/// Reference digests: what a solo batch-1 run (the `nongemm-cli run`
/// path: build → optimize → interpret) produces for one request seed.
fn solo_digests(model: ModelId, opt: OptLevel, input_seed: u64) -> HashMap<u64, String> {
    let built = model.build(1, Scale::Tiny).expect("model builds");
    let (graph, _) = nongemm::opt::optimize(&built, opt);
    let overrides = batching::batched_inputs(&graph, &[input_seed]).expect("inputs synthesize");
    let trace = Interpreter::new(0x5eed)
        .run_with_inputs(&graph, &overrides)
        .expect("solo run succeeds");
    trace
        .outputs
        .iter()
        .map(|(id, t)| (id.0 as u64, tensor_digest(t)))
        .collect()
}

fn response_digests(resp: &serde_json::Value) -> HashMap<u64, String> {
    resp["result"]["outputs"]
        .as_array()
        .expect("outputs array")
        .iter()
        .map(|o| {
            (
                o["node"].as_u64().expect("node id"),
                o["digest"].as_str().expect("digest").to_string(),
            )
        })
        .collect()
}

/// Polls server stats until `pred` holds (bounded; panics on timeout).
fn wait_for_stats(handle: &ServerHandle, pred: impl Fn(nongemm::serve::ServeStats) -> bool) {
    for _ in 0..500 {
        if pred(handle.stats()) {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("stats condition not reached: {:?}", handle.stats());
}

#[test]
fn ping_stats_and_unknown_model() {
    let handle = start(test_config());
    let mut c = Client::connect(handle.addr()).unwrap();
    let pong = c.request(&Request::Ping).unwrap();
    assert_eq!(pong["ok"], true);
    assert_eq!(pong["pong"], true);

    let resp = c.infer("nonesuch", "r0", 1).unwrap();
    assert_eq!(resp["ok"], false);
    assert_eq!(resp["error"]["code"], 404u64);

    let stats = c.stats().unwrap();
    assert_eq!(stats["ok"], true);
    assert_eq!(stats["stats"]["errors"], 1u64);

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_lines_get_400_not_disconnect() {
    let handle = start(test_config());
    let mut c = Client::connect(handle.addr()).unwrap();
    // hand-write garbage on the socket, then a valid ping on the same
    // connection: the server must answer both
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    let resp: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(resp["ok"], false);
    assert_eq!(resp["error"]["code"], 400u64);

    assert_eq!(c.request(&Request::Ping).unwrap()["ok"], true);
    handle.shutdown();
    handle.join();
}

#[test]
fn single_request_is_served_at_the_batch_deadline() {
    // one lonely request must not wait forever for companions: the
    // batch-wait deadline fires and it is served with batch_size == 1
    let handle = start(test_config());
    let mut c = Client::connect(handle.addr()).unwrap();
    let resp = c.infer("bert", "solo", 7).unwrap();
    assert_eq!(resp["ok"], true, "response: {resp}");
    assert_eq!(resp["result"]["batch_size"], 1u64);
    assert!(resp["result"]["queue_us"].as_f64().unwrap() >= 0.0);
    assert!(resp["result"]["exec_us"].as_f64().unwrap() > 0.0);
    // the taxonomy breakdown rides along on every response
    assert!(resp["result"]["breakdown"]["total_s"].as_f64().unwrap() > 0.0);
    assert_eq!(
        response_digests(&resp),
        solo_digests(ModelId::Bert, OptLevel::O0, 7)
    );

    let final_stats = {
        handle.shutdown();
        handle.join()
    };
    assert_eq!(final_stats.completed, 1);
    assert_eq!(final_stats.accepted, 1);
}

#[test]
fn zero_queue_cap_rejects_everything_with_retry_after() {
    let config = ServeConfig {
        queue_cap: 0,
        ..test_config()
    };
    let handle = start(config);
    let mut c = Client::connect(handle.addr()).unwrap();
    for i in 0..3 {
        let resp = c.infer("bert", &format!("r{i}"), i).unwrap();
        assert_eq!(resp["ok"], false);
        assert_eq!(resp["error"]["code"], 429u64);
        assert!(resp["error"]["retry_after_ms"].as_u64().unwrap() >= 1);
    }
    let stats = handle.stats();
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.accepted, 0);
    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_rejects_deterministically_under_pause() {
    let config = ServeConfig {
        queue_cap: 2,
        ..test_config()
    };
    let handle = start(config);
    let mut control = Client::connect(handle.addr()).unwrap();
    assert_eq!(control.request(&Request::Pause).unwrap()["ok"], true);

    // with the scheduler held, the first two admissions fill the queue
    let mut clients: Vec<Client> = (0..3)
        .map(|_| Client::connect(handle.addr()).unwrap())
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.send(&Request::Infer {
            id: format!("r{i}"),
            model: "bert".into(),
            seed: i as u64,
        })
        .unwrap();
        // serialize admissions so exactly the third one overflows
        wait_for_stats(&handle, |s| s.accepted + s.rejected == i as u64 + 1);
    }
    let overflow = clients[2].recv().unwrap();
    assert_eq!(overflow["ok"], false);
    assert_eq!(overflow["error"]["code"], 429u64);
    assert_eq!(overflow["error"]["message"], "queue full");

    assert_eq!(control.request(&Request::Resume).unwrap()["ok"], true);
    for (i, c) in clients.iter_mut().take(2).enumerate() {
        let resp = c.recv().unwrap();
        assert_eq!(resp["ok"], true, "client {i}: {resp}");
    }
    let stats = handle.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.accepted, 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_requests_form_a_batch_bit_identical_to_solo_runs() {
    let config = ServeConfig {
        max_batch: 3,
        ..test_config()
    };
    let handle = start(config);
    let mut control = Client::connect(handle.addr()).unwrap();
    assert_eq!(control.request(&Request::Pause).unwrap()["ok"], true);

    let seeds = [11u64, 22, 33];
    let mut clients: Vec<Client> = seeds
        .iter()
        .map(|_| Client::connect(handle.addr()).unwrap())
        .collect();
    for (c, &seed) in clients.iter_mut().zip(&seeds) {
        c.send(&Request::Infer {
            id: format!("s{seed}"),
            model: "bert".into(),
            seed,
        })
        .unwrap();
    }
    wait_for_stats(&handle, |s| s.accepted == 3);
    assert_eq!(control.request(&Request::Resume).unwrap()["ok"], true);

    for (c, &seed) in clients.iter_mut().zip(&seeds) {
        let resp = c.recv().unwrap();
        assert_eq!(resp["ok"], true, "seed {seed}: {resp}");
        assert_eq!(resp["id"].as_str().unwrap(), format!("s{seed}"));
        // all three dispatched as ONE batch...
        assert_eq!(resp["result"]["batch_size"], 3u64);
        // ...and each row is bit-identical to that seed's solo run
        assert_eq!(
            response_digests(&resp),
            solo_digests(ModelId::Bert, OptLevel::O0, seed),
            "batched row for seed {seed} diverged from solo execution"
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.max_batch, 3);
    handle.shutdown();
    handle.join();
}

#[test]
fn non_transparent_models_execute_at_batch_one() {
    // gpt2 is NOT batch-transparent (GEMM row-block tails mix rows), so
    // even simultaneous requests must execute as batch-1 dispatches with
    // rows bit-identical to solo runs
    let handle = start(test_config());
    let mut control = Client::connect(handle.addr()).unwrap();
    assert_eq!(control.request(&Request::Pause).unwrap()["ok"], true);

    let seeds = [5u64, 6];
    let mut clients: Vec<Client> = seeds
        .iter()
        .map(|_| Client::connect(handle.addr()).unwrap())
        .collect();
    for (c, &seed) in clients.iter_mut().zip(&seeds) {
        c.send(&Request::Infer {
            id: format!("g{seed}"),
            model: "gpt2".into(),
            seed,
        })
        .unwrap();
    }
    wait_for_stats(&handle, |s| s.accepted == 2);
    assert_eq!(control.request(&Request::Resume).unwrap()["ok"], true);

    for (c, &seed) in clients.iter_mut().zip(&seeds) {
        let resp = c.recv().unwrap();
        assert_eq!(resp["ok"], true, "seed {seed}: {resp}");
        assert_eq!(resp["result"]["batch_size"], 1u64);
        assert_eq!(
            response_digests(&resp),
            solo_digests(ModelId::Gpt2, OptLevel::O0, seed)
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.max_batch, 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn graph_cache_serves_steady_state_from_memory() {
    let handle = start(test_config());
    let mut c = Client::connect(handle.addr()).unwrap();
    for i in 0..3 {
        assert_eq!(c.infer("bert", &format!("w{i}"), i).unwrap()["ok"], true);
    }
    let stats = c.stats().unwrap();
    let cache = &stats["stats"]["graph_cache"];
    // batch-1 graph built exactly once, then pure hits
    assert_eq!(cache["misses"], 1u64, "cache: {cache}");
    assert!(cache["hits"].as_u64().unwrap() >= 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_mid_load_answers_every_admitted_request() {
    let handle = start(test_config());
    let mut control = Client::connect(handle.addr()).unwrap();
    assert_eq!(control.request(&Request::Pause).unwrap()["ok"], true);

    // load up 4 requests while the scheduler is held, then shut down
    // without ever resuming: the drain must override the pause and
    // answer all of them
    let seeds = [1u64, 2, 3, 4];
    let mut clients: Vec<Client> = seeds
        .iter()
        .map(|_| Client::connect(handle.addr()).unwrap())
        .collect();
    for (c, &seed) in clients.iter_mut().zip(&seeds) {
        c.send(&Request::Infer {
            id: format!("d{seed}"),
            model: "bert".into(),
            seed,
        })
        .unwrap();
    }
    wait_for_stats(&handle, |s| s.accepted == 4);
    handle.shutdown();

    for (c, &seed) in clients.iter_mut().zip(&seeds) {
        let resp = c.recv().unwrap();
        assert_eq!(resp["ok"], true, "seed {seed} must be answered: {resp}");
    }
    let final_stats = handle.join();
    assert_eq!(final_stats.accepted, 4);
    assert_eq!(
        final_stats.completed, 4,
        "no admitted request may be dropped"
    );
}

#[test]
fn draining_server_rejects_new_requests_with_503() {
    let handle = start(test_config());
    let mut control = Client::connect(handle.addr()).unwrap();
    assert_eq!(control.request(&Request::Pause).unwrap()["ok"], true);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.send(&Request::Infer {
        id: "in".into(),
        model: "bert".into(),
        seed: 1,
    })
    .unwrap();
    wait_for_stats(&handle, |s| s.accepted == 1);
    // pipeline drain + a late infer on one connection: the reader
    // processes them back to back, before the scheduler can finish
    // draining and close the socket
    control.send(&Request::Shutdown).unwrap();
    control
        .send(&Request::Infer {
            id: "late".into(),
            model: "bert".into(),
            seed: 2,
        })
        .unwrap();
    let ack = control.recv().unwrap();
    assert_eq!(ack["ok"], true);
    assert_eq!(ack["draining"], true);
    let late = control.recv().unwrap();
    assert_eq!(late["ok"], false);
    assert_eq!(late["error"]["code"], 503u64);
    // the admitted request still completes
    assert_eq!(c.recv().unwrap()["ok"], true);
    let final_stats = handle.join();
    assert_eq!(final_stats.completed, 1);
    assert_eq!(final_stats.rejected, 1);
}
