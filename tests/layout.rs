//! Layout contract of contiguous elision and strided kernel consumption:
//! dropping a `Contiguous` node hands its consumers the producer's strided
//! view, and every stride-capable kernel must read it bit-identically to
//! the dense copy. Consequently, for every registry model, outputs with
//! elision on and off must match exactly — across engines, thread counts,
//! and intra-op modes — and no compute kernel may materialize a dense
//! scratch copy at O2 (the runtime `bytes_materialized` telemetry stays
//! zero outside the graph's own fundamental `Contiguous` copies).

use nongemm::exec::{Engine, Interpreter};
use nongemm::{optimize_with, ModelId, OptLevel, Scale};

/// Output bit patterns: NaN-safe equality (`NaN != NaN` under `f32` eq).
/// Integer/bool outputs (token ids, NMS keeps) widen into the same space.
/// Unlike the intra-op determinism sweep, node ids are *not* part of the
/// pattern: elision removes nodes, so the same logical output sits at a
/// different id in the elided graph.
fn bits(trace: &nongemm::exec::ExecutionTrace) -> Vec<(Vec<usize>, Vec<u64>)> {
    trace
        .outputs
        .iter()
        .map(|(_, t)| {
            let b = if let Ok(v) = t.to_vec_f32() {
                v.iter().map(|x| u64::from(x.to_bits())).collect()
            } else if let Ok(v) = t.to_vec_i64() {
                v.iter().map(|&x| x as u64).collect()
            } else {
                t.to_vec_bool()
                    .expect("f32, i64, or bool outputs")
                    .iter()
                    .map(|&x| u64::from(x))
                    .collect()
            };
            (t.shape().to_vec(), b)
        })
        .collect()
}

/// Elision on and off must be observationally equivalent for every model:
/// same outputs, bit for bit, on the sequential engine, on 1/2/8 parallel
/// workers, and with intra-op chunking both off and on.
#[test]
fn every_model_is_bit_identical_with_elision_on_and_off() {
    for &model in ModelId::all() {
        let base = model
            .build(1, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let (on, rep_on) = optimize_with(&base, OptLevel::O2, true);
        let (off, rep_off) = optimize_with(&base, OptLevel::O2, false);
        assert_eq!(
            rep_off.contiguous_elided, 0,
            "{model}: elision ran while off"
        );
        assert!(
            on.len() <= off.len(),
            "{model}: elision grew the graph ({} -> {})",
            off.len(),
            on.len()
        );
        let want = bits(
            &Interpreter::default()
                .intra_op(false)
                .run(&off)
                .unwrap_or_else(|e| panic!("{model} (elide off, sequential): {e}")),
        );
        assert!(!want.is_empty(), "{model}: no outputs");
        // sequential, elision on
        assert_eq!(
            want,
            bits(
                &Interpreter::default()
                    .intra_op(false)
                    .run(&on)
                    .unwrap_or_else(|e| panic!("{model} (elide on, sequential): {e}"))
            ),
            "{model}: elision changed sequential outputs (elided {})",
            rep_on.contiguous_elided,
        );
        for intra_op in [false, true] {
            for threads in [1usize, 2, 8] {
                let trace = Interpreter::default()
                    .engine(Engine::Parallel(threads))
                    .intra_op(intra_op)
                    .run(&on)
                    .unwrap_or_else(|e| {
                        panic!("{model} (elide on, intra {intra_op}, {threads}t): {e}")
                    });
                assert_eq!(
                    want,
                    bits(&trace),
                    "{model}: elision diverged (intra-op {intra_op}, {threads} threads)"
                );
            }
        }
    }
}

/// The paper's transformer hot path: `bmm(q, kᵀ)` and the rest of the
/// attention prologue consume transposed/permuted views in place. At O2
/// the only dense copies left in BERT/GPT-2/Llama-2 are the graphs' own
/// attention-epilogue `Contiguous` nodes (the head-merge reshape, a
/// fundamental copy); every compute kernel records zero bytes
/// materialized.
#[test]
fn transformer_compute_kernels_materialize_nothing_at_o2() {
    for model in [ModelId::Bert, ModelId::Gpt2, ModelId::Llama2_7b] {
        let base = model.build(1, Scale::Tiny).unwrap();
        let (g, _) = optimize_with(&base, OptLevel::O2, true);
        let trace = Interpreter::default().run(&g).unwrap();
        for t in &trace.timings {
            let node = &g.nodes[t.id.0];
            if matches!(node.op, nongemm::OpKind::Contiguous) {
                continue;
            }
            assert_eq!(
                t.bytes_materialized,
                0,
                "{model}: {} ({}) materialized a dense copy",
                node.name,
                node.op.name()
            );
        }
        // the epilogue copies themselves are real and accounted
        assert!(
            trace.bytes_materialized() > 0,
            "{model}: expected the head-merge Contiguous copies to be counted"
        );
    }
}

/// Elision measurably shrinks runtime materialization where the static
/// counter says it should: Swin's windowing pipeline at O2 copies
/// strictly fewer bytes than at O0.
#[test]
fn elision_reduces_measured_bytes_on_swin() {
    let base = ModelId::SwinTiny.build(1, Scale::Tiny).unwrap();
    let (o0, _) = optimize_with(&base, OptLevel::O0, true);
    let (o2, rep) = optimize_with(&base, OptLevel::O2, true);
    assert!(rep.contiguous_elided > 0, "swin elides nothing");
    let interp = Interpreter::default();
    let b0 = interp.run(&o0).unwrap().bytes_materialized();
    let b2 = interp.run(&o2).unwrap().bytes_materialized();
    assert!(
        b2 < b0,
        "elision did not reduce measured bytes ({b0} -> {b2})"
    );
    // and the static cost-model bound agrees in direction
    assert!(o2.contiguous_copy_bytes() < o0.contiguous_copy_bytes());
}
